/// `service::PulseStore` and the content-addressing primitives: bucket
/// quantization, key digests, and the bitwise JSONL round trip the service's
/// warm-restart contract rests on.

#include "service/pulse_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <fstream>
#include <sstream>

namespace qoc::service {
namespace {

TEST(KeyQuantization, SmallDriftStaysInBucket) {
    const auto base = device::ibmq_montreal();
    auto drifted = base;
    drifted.qubits[0].detuning = 1.2e-3;      // drift fields are not keyed at all
    drifted.qubits[0].amp_scale = 1.02;       // (nominal_model strips them)
    drifted.qubits[0].t1 *= 1.01;             // well inside the 0.5 log bucket
    drifted.qubits[0].t2 *= 1.01;
    const KeyQuant quant;
    EXPECT_EQ(device_key_digest(base, quant, 0, false),
              device_key_digest(drifted, quant, 0, false));
    EXPECT_EQ(device_key_digest(base, quant, 0, true),
              device_key_digest(drifted, quant, 0, true));
}

TEST(KeyQuantization, DistinctDevicesAndBigMovesChangeTheKey) {
    const auto montreal = device::ibmq_montreal();
    const auto toronto = device::ibmq_toronto();
    const KeyQuant quant;
    EXPECT_NE(device_key_digest(montreal, quant, 0, false),
              device_key_digest(toronto, quant, 0, false));
    // Per-qubit digests differ too (qubit index and parameters are keyed).
    EXPECT_NE(device_key_digest(montreal, quant, 0, false),
              device_key_digest(montreal, quant, 1, false));
    // A genuinely large T1 collapse (factor e) leaves the log bucket.
    auto collapsed = montreal;
    collapsed.qubits[0].t1 /= std::exp(1.0);
    collapsed.qubits[0].t2 /= std::exp(1.0);
    EXPECT_NE(device_key_digest(montreal, quant, 0, false),
              device_key_digest(collapsed, quant, 0, false));
}

TEST(KeyQuantization, CanonicalModelIsAFixedPointAndBucketCentered) {
    const auto base = device::ibmq_montreal();
    const KeyQuant quant;
    const auto canon = quantize_design_model(base, quant);
    // Canonicalizing twice is the identity (bit-for-bit): the design input
    // is a pure function of the buckets.
    const auto canon2 = quantize_design_model(canon, quant);
    for (std::size_t q = 0; q < canon.qubits.size(); ++q) {
        EXPECT_EQ(canon.qubit(q).frequency_ghz, canon2.qubit(q).frequency_ghz);
        EXPECT_EQ(canon.qubit(q).anharmonicity, canon2.qubit(q).anharmonicity);
        EXPECT_EQ(canon.qubit(q).t1, canon2.qubit(q).t1);
        EXPECT_EQ(canon.qubit(q).t2, canon2.qubit(q).t2);
        // Canonical values sit near the exact ones (within half a bucket).
        EXPECT_NEAR(canon.qubit(q).frequency_ghz, base.qubit(q).frequency_ghz,
                    0.5 * quant.freq_ghz_grid + 1e-12);
        EXPECT_LE(canon.qubit(q).t2, 2.0 * canon.qubit(q).t1);
    }
    // Imperfections are stripped exactly as nominal_model does.
    EXPECT_EQ(canon.qubit(0).detuning, 0.0);
    EXPECT_EQ(canon.qubit(0).amp_scale, 1.0);
}

StoredPulse sample_pulse(std::uint64_t key) {
    StoredPulse p;
    p.key = key;
    p.gate = "x";
    p.qubit = 0;
    p.duration_dt = 5;
    p.model_fid_err = 0.1 + 0.2;  // deliberately non-representable nicely
    p.state = EntryState::kFresh;
    p.design_count = 1;
    p.validated = flatten_params(device::ibmq_montreal());
    StoredPulse::ChannelSamples ch;
    ch.channel = pulse::drive_channel(0);
    ch.samples = {{0.25, -0.125},
                  {1e-300, -5e-200},
                  {std::acos(-1.0) / 4.0, 0.3},
                  {-0.7071067811865476, 1e-17},
                  {0.0, 0.0}};
    p.channels.push_back(ch);
    return p;
}

void expect_pulse_bitwise_equal(const StoredPulse& a, const StoredPulse& b) {
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.gate, b.gate);
    EXPECT_EQ(a.qubit, b.qubit);
    EXPECT_EQ(a.duration_dt, b.duration_dt);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.model_fid_err),
              std::bit_cast<std::uint64_t>(b.model_fid_err));
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.design_count, b.design_count);
    EXPECT_EQ(a.validated, b.validated);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (std::size_t c = 0; c < a.channels.size(); ++c) {
        EXPECT_EQ(a.channels[c].channel, b.channels[c].channel);
        ASSERT_EQ(a.channels[c].samples.size(), b.channels[c].samples.size());
        for (std::size_t i = 0; i < a.channels[c].samples.size(); ++i) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(a.channels[c].samples[i].real()),
                      std::bit_cast<std::uint64_t>(b.channels[c].samples[i].real()));
            EXPECT_EQ(std::bit_cast<std::uint64_t>(a.channels[c].samples[i].imag()),
                      std::bit_cast<std::uint64_t>(b.channels[c].samples[i].imag()));
        }
    }
}

TEST(PulseStore, PutLookupStateAndDemote) {
    PulseStore store;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.lookup(42).has_value());

    store.put(sample_pulse(42));
    store.put(sample_pulse(43));
    EXPECT_EQ(store.size(), 2u);
    const auto hit = store.lookup(42);
    ASSERT_TRUE(hit.has_value());
    expect_pulse_bitwise_equal(*hit, sample_pulse(42));

    // Replacement, not duplication.
    auto replacement = sample_pulse(42);
    replacement.design_count = 7;
    store.put(replacement);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.lookup(42)->design_count, 7u);

    EXPECT_TRUE(store.set_state(42, EntryState::kSuspect));
    EXPECT_EQ(store.lookup(42)->state, EntryState::kSuspect);
    EXPECT_FALSE(store.set_state(999, EntryState::kSuspect));

    // demote_if only touches FRESH entries matching the predicate.
    const std::size_t demoted =
        store.demote_if([](const StoredPulse& p) { return p.key == 43 || p.key == 42; });
    EXPECT_EQ(demoted, 1u);  // 42 was already suspect
    EXPECT_EQ(store.lookup(43)->state, EntryState::kSuspect);

    store.clear();
    EXPECT_EQ(store.size(), 0u);
}

TEST(PulseStore, JsonlRoundTripIsBitwise) {
    PulseStore store;
    store.put(sample_pulse(7));
    auto suspect = sample_pulse(1ull << 60);
    suspect.state = EntryState::kSuspect;
    suspect.gate = "cx";
    // -0.0 must survive: it is a distinct bit pattern the decimal rendering
    // of doubles would lose but the bit-pattern JSONL encoding keeps.
    suspect.channels.push_back({pulse::control_channel(0), {{-0.0, 0.5}}});
    store.put(suspect);

    const std::string path = testing::TempDir() + "qoc_pulse_store_roundtrip.jsonl";
    store.save_jsonl(path);

    PulseStore loaded;
    EXPECT_EQ(loaded.load_jsonl(path), 2u);
    ASSERT_TRUE(loaded.lookup(7).has_value());
    ASSERT_TRUE(loaded.lookup(1ull << 60).has_value());
    expect_pulse_bitwise_equal(*loaded.lookup(7), sample_pulse(7));
    expect_pulse_bitwise_equal(*loaded.lookup(1ull << 60), suspect);

    // Save of the loaded store reproduces the file byte-for-byte (entries
    // are written key-sorted, so the file is content-deterministic).
    const std::string path2 = testing::TempDir() + "qoc_pulse_store_roundtrip2.jsonl";
    loaded.save_jsonl(path2);
    std::ifstream f1(path), f2(path2);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_FALSE(s1.str().empty());
}

TEST(PulseStore, OccupancyCountsShardsAndStates) {
    PulseStore store;
    const auto empty = store.occupancy();
    EXPECT_EQ(empty.total, 0u);
    EXPECT_EQ(empty.fresh, 0u);
    EXPECT_EQ(empty.suspect, 0u);

    for (std::uint64_t k = 1; k <= 40; ++k) store.put(sample_pulse(k));
    store.set_state(3, EntryState::kSuspect);
    store.set_state(7, EntryState::kSuspect);

    const auto occ = store.occupancy();
    EXPECT_EQ(occ.total, 40u);
    EXPECT_EQ(occ.fresh, 38u);
    EXPECT_EQ(occ.suspect, 2u);
    std::size_t shard_total = 0;
    for (const std::size_t n : occ.shard_sizes) shard_total += n;
    EXPECT_EQ(shard_total, occ.total);
    // Keys 1..40 mod 16 shards: every shard holds at least two entries.
    for (const std::size_t n : occ.shard_sizes) EXPECT_GE(n, 2u);
}

TEST(PulseStore, MissingFileLoadsNothing) {
    PulseStore store;
    EXPECT_EQ(store.load_jsonl(testing::TempDir() + "qoc_no_such_store.jsonl"), 0u);
    EXPECT_EQ(store.size(), 0u);
}

TEST(PulseStore, StoredPulseScheduleRoundTripsSamples) {
    const StoredPulse p = sample_pulse(11);
    const pulse::Schedule sched = stored_pulse_schedule(p);
    const auto& want = p.channels[0].samples;
    const auto got = sched.channel_samples(p.channels[0].channel, want.size());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].real()),
                  std::bit_cast<std::uint64_t>(want[i].real()));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].imag()),
                  std::bit_cast<std::uint64_t>(want[i].imag()));
    }
}

}  // namespace
}  // namespace qoc::service
