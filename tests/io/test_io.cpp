#include "io/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace qoc::io {
namespace {

TEST(IoAmplitudes, RoundTripStream) {
    dynamics::ControlAmplitudes amps{{0.1, -0.2}, {0.30000000001, 0.4}, {-1.0, 1.0}};
    std::stringstream ss;
    write_amplitudes_csv(ss, amps);
    const auto back = read_amplitudes_csv(ss);
    ASSERT_EQ(back.size(), amps.size());
    for (std::size_t k = 0; k < amps.size(); ++k) {
        for (std::size_t j = 0; j < amps[k].size(); ++j) {
            EXPECT_DOUBLE_EQ(back[k][j], amps[k][j]);
        }
    }
}

TEST(IoAmplitudes, RoundTripFile) {
    dynamics::ControlAmplitudes amps{{0.5}, {0.25}};
    const std::string path = "/tmp/qoc_test_amps.csv";
    save_amplitudes(path, amps);
    const auto back = load_amplitudes(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back[1][0], 0.25);
    std::remove(path.c_str());
}

TEST(IoAmplitudes, MalformedInputsThrow) {
    {
        std::stringstream ss("not,a,header\n0,1,2\n");
        EXPECT_THROW(read_amplitudes_csv(ss), std::runtime_error);
    }
    {
        std::stringstream ss("slot,u0,u1\n0,1.0\n");  // ragged
        EXPECT_THROW(read_amplitudes_csv(ss), std::runtime_error);
    }
    {
        std::stringstream ss("slot,u0\n0,abc\n");  // non-numeric
        EXPECT_THROW(read_amplitudes_csv(ss), std::runtime_error);
    }
    {
        std::stringstream ss("slot,u0\n");  // empty body
        EXPECT_THROW(read_amplitudes_csv(ss), std::runtime_error);
    }
    EXPECT_THROW(load_amplitudes("/nonexistent/dir/x.csv"), std::runtime_error);
    std::stringstream ss;
    EXPECT_THROW(write_amplitudes_csv(ss, {}), std::invalid_argument);
}

TEST(IoSamples, RoundTrip) {
    std::vector<std::complex<double>> samples{{0.1, -0.3}, {1.0, 0.0}, {0.0, 0.5}};
    std::stringstream ss;
    write_samples_csv(ss, samples);
    const auto back = read_samples_csv(ss);
    ASSERT_EQ(back.size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_DOUBLE_EQ(back[k].real(), samples[k].real());
        EXPECT_DOUBLE_EQ(back[k].imag(), samples[k].imag());
    }
}

TEST(IoRbCurve, WritesFitHeaderAndRows) {
    rb::RbCurve curve;
    curve.a = 0.5;
    curve.alpha = 0.999;
    curve.b = 0.5;
    curve.epc = 5e-4;
    curve.points = {{1, 0.99, 0.001}, {100, 0.95, 0.002}};
    std::stringstream ss;
    write_rb_curve_csv(ss, curve);
    const std::string out = ss.str();
    EXPECT_NE(out.find("alpha=0.999"), std::string::npos);
    EXPECT_NE(out.find("length,survival,sem,fit"), std::string::npos);
    EXPECT_NE(out.find("100,0.95"), std::string::npos);
}

}  // namespace
}  // namespace qoc::io
