#include "experiments/gate_designer.hpp"

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::experiments {
namespace {

namespace g = quantum::gates;

TEST(AmpsToSchedule, BuildsClippedIqWaveform) {
    control::ControlAmplitudes amps{{0.5, 0.1}, {0.9, 0.9}};  // second slot |s|>1
    const auto sched = amps_to_schedule(amps, 0, 1, 8, pulse::drive_channel(0), "t");
    const auto samples = sched.channel_samples(pulse::drive_channel(0), 8);
    EXPECT_NEAR(samples[0].real(), 0.5, 1e-12);
    EXPECT_NEAR(samples[0].imag(), 0.1, 1e-12);
    // Clipped to the unit disc.
    EXPECT_LE(std::abs(samples[7]), 1.0 + 1e-12);
    EXPECT_EQ(sched.total_duration(), 8u);
}

TEST(AmpsToSchedule, SingleControlHasZeroQuadrature) {
    control::ControlAmplitudes amps{{0.3}, {0.4}};
    const auto sched = amps_to_schedule(amps, 0, SIZE_MAX, 4, pulse::drive_channel(0), "t");
    const auto samples = sched.channel_samples(pulse::drive_channel(0), 4);
    for (const auto& s : samples) EXPECT_NEAR(s.imag(), 0.0, 1e-15);
}

class DesignerTest : public ::testing::Test {
protected:
    static const device::BackendConfig& nominal() {
        static device::BackendConfig cfg = device::nominal_model(device::ibmq_montreal());
        return cfg;
    }
};

TEST_F(DesignerTest, XGateLongPulseOpenSystem) {
    // The paper's X setup: 480 dt, X+Y controls, T1 decoherence in the model.
    GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 480;
    spec.n_timeslots = 32;
    spec.model = DesignModel::kThreeLevelOpen;
    const auto designed = design_1q_gate(nominal(), 0, "x", spec);
    EXPECT_LT(designed.model_fid_err, 1e-3);
    EXPECT_EQ(designed.schedule.total_duration(), 480u);

    // Executing the design on the (nominal) device must flip the qubit.
    device::PulseExecutor exec(nominal());
    const auto sup = exec.schedule_superop_1q(designed.schedule, 0);
    const auto rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_GT(rho(1, 1).real(), 0.995);
}

TEST_F(DesignerTest, SxGateSingleControlClosed) {
    // The paper's sqrt(X): single X control, decoherence dropped.
    GateDesignSpec spec;
    spec.target = g::sx();
    spec.duration_dt = 736;
    spec.n_timeslots = 32;
    spec.use_y_control = false;
    spec.model = DesignModel::kThreeLevelClosed;
    const auto designed = design_1q_gate(nominal(), 0, "sx", spec);
    // The energy regularizer trades a little model fidelity for gentleness.
    EXPECT_LT(designed.model_fid_err, 1e-4);

    device::PulseExecutor exec(nominal());
    const auto sup = exec.schedule_superop_1q(designed.schedule, 0);
    const auto rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_NEAR(rho(1, 1).real(), 0.5, 0.01);
}

TEST_F(DesignerTest, ShortXThreeLevelAware) {
    // Table-2 style short pulse on the leakage-aware 3-level model.
    GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 256;
    spec.n_timeslots = 32;
    spec.model = DesignModel::kThreeLevelClosed;
    const auto designed = design_1q_gate(nominal(), 0, "x", spec);
    EXPECT_LT(designed.model_fid_err, 1e-6);

    device::PulseExecutor exec(nominal());
    const auto sup = exec.schedule_superop_1q(designed.schedule, 0);
    const auto rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_GT(rho(1, 1).real(), 0.995);
    EXPECT_LT(rho(2, 2).real(), 1e-3);  // negligible leakage
}

TEST_F(DesignerTest, CxChannelFaithful) {
    CxDesignSpec spec;
    spec.n_timeslots = 32;
    spec.max_iterations = 800;
    const auto designed = design_cx_gate(nominal(), spec);
    // Model floor ~2e-3: the U0 classical crosstalk (XI term) cannot be
    // cancelled without driving D0, which the energy budget forbids.
    EXPECT_LT(designed.model_fid_err, 5e-3);

    device::PulseExecutor exec(nominal());
    const auto sup = exec.schedule_superop_2q(designed.schedule);
    const double f = quantum::average_gate_fidelity_superop(g::cx(), sup);
    // Drive-amplitude noise (unknown to the design model) costs ~1e-2.
    EXPECT_GT(f, 0.94);
}

TEST_F(DesignerTest, CxIdealizedControlsConvergeBetterOnModel) {
    // The idealized three-term controls (paper's Eq. 3 reading) converge on
    // the model but lose fidelity when mapped to real channels.
    CxDesignSpec ideal;
    ideal.idealized_controls = true;
    ideal.duration_dt = 800;
    ideal.n_timeslots = 32;
    const auto designed = design_cx_gate(nominal(), ideal);
    EXPECT_LT(designed.model_fid_err, 1e-4);

    device::PulseExecutor exec(nominal());
    const auto sup = exec.schedule_superop_2q(designed.schedule);
    const double f = quantum::average_gate_fidelity_superop(g::cx(), sup);
    // On hardware the U0 channel drags IX/XI along: fidelity drops well
    // below the model prediction.
    EXPECT_LT(f, 1.0 - designed.model_fid_err);
}

}  // namespace
}  // namespace qoc::experiments
