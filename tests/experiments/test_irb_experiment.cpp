#include "experiments/irb_experiment.hpp"

#include <gtest/gtest.h>

#include "experiments/gate_designer.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop.hpp"

namespace qoc::experiments {
namespace {

namespace g = quantum::gates;

class IrbExperimentTest : public ::testing::Test {
protected:
    static device::PulseExecutor& exec() {
        static device::PulseExecutor instance{device::ibmq_montreal()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
        return map;
    }
    static const rb::Clifford1Q& c1() {
        static rb::Clifford1Q group;
        return group;
    }
};

TEST_F(IrbExperimentTest, DefaultHSuperopActsAsHadamard) {
    const auto sup = default_gate_superop_1q(exec(), defaults(), "h", 0);
    const auto rho = quantum::apply_superop(sup, exec().ground_state_1q());
    // Inherits the intentional default-sx amplitude miscalibration.
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 0.06);
    EXPECT_NEAR(rho(0, 1).real(), 0.5, 0.06);
}

TEST_F(IrbExperimentTest, UnknownGateThrows) {
    EXPECT_THROW(default_gate_superop_1q(exec(), defaults(), "t", 0), std::invalid_argument);
}

TEST_F(IrbExperimentTest, HistogramDefaultXMostlyOne) {
    const auto counts =
        state_histogram_1q(exec(), defaults(), "x", 0, nullptr, 4096, 11);
    EXPECT_GT(counts.probability("1"), 0.9);
    EXPECT_EQ(counts.shots, 4096);
}

TEST_F(IrbExperimentTest, HistogramCustomGateUsed) {
    // A deliberately bad custom "x" (empty schedule = identity) must leave
    // the qubit in |0>, proving the calibration really shadows the default.
    pulse::Schedule idle("bad_x");
    idle.insert(0, pulse::Delay{16, pulse::drive_channel(0)});
    const auto counts = state_histogram_1q(exec(), defaults(), "x", 0, &idle, 4096, 13);
    EXPECT_GT(counts.probability("0"), 0.9);
}

TEST_F(IrbExperimentTest, CompareXCustomVsDefault) {
    GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 480;
    spec.n_timeslots = 32;
    spec.model = DesignModel::kThreeLevelOpen;
    const auto designed =
        design_1q_gate(device::nominal_model(exec().config()), 0, "x", spec);

    rb::RbOptions opts;
    opts.lengths = {1, 300, 800, 1500, 2500};
    opts.seeds_per_length = 4;
    opts.shots = 4096;
    const GateComparison cmp =
        compare_1q_gate(exec(), defaults(), "x", 0, designed.schedule, c1(), opts);

    // Both error rates at the paper's 1e-4 scale.
    EXPECT_GT(cmp.custom.gate_error, 1e-5);
    EXPECT_LT(cmp.custom.gate_error, 3e-3);
    EXPECT_GT(cmp.standard.gate_error, 1e-5);
    EXPECT_LT(cmp.standard.gate_error, 3e-3);
}

TEST_F(IrbExperimentTest, CxHistogramExpects11) {
    const auto counts = state_histogram_cx(exec(), defaults(), nullptr, 4096, 17);
    EXPECT_GT(counts.probability("11"), 0.75);
}

TEST(Report, FormatErrorRate) {
    EXPECT_EQ(format_error_rate(1.97e-4, 4.94e-5), "1.97(49)e-04");
    EXPECT_EQ(format_error_rate(5.6e-3, 9.2e-4), "5.60(92)e-03");
    // Zero/negative handled gracefully.
    EXPECT_FALSE(format_error_rate(0.0, 1e-5).empty());
}

}  // namespace
}  // namespace qoc::experiments
