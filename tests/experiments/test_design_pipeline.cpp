/// `experiments::DesignPipeline`: the batched design + IRB task graph must
/// be (a) bitwise identical to the per-call APIs it replaces, (b) bitwise
/// identical across task-pool sizes, and (c) actually share the per-qubit
/// reference curve and gate set between characterizations.

#include "experiments/design_pipeline.hpp"

#include <gtest/gtest.h>

#include "quantum/gates.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::experiments {
namespace {

namespace g = quantum::gates;

device::PulseExecutor& exec() {
    static device::PulseExecutor instance{device::ibmq_montreal()};
    return instance;
}

const pulse::InstructionScheduleMap& defaults() {
    static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
    return map;
}

/// Small-but-real design job: two-level closed model, few slots, few
/// iterations -- cheap enough to grid over seeds in a unit test.
GateDesignSpec tiny_spec(const linalg::Mat& target) {
    GateDesignSpec s;
    s.target = target;
    s.duration_dt = 64;
    s.n_timeslots = 8;
    s.model = DesignModel::kTwoLevelClosed;
    s.max_iterations = 5;
    s.target_fid_err = 1e-8;
    return s;
}

rb::RbOptions tiny_rb() {
    rb::RbOptions o;
    o.lengths = {1, 16, 32};
    o.seeds_per_length = 3;
    o.shots = 512;
    return o;
}

void expect_curves_bitwise_equal(const rb::RbCurve& a, const rb::RbCurve& b) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].mean_survival, b.points[i].mean_survival) << "i=" << i;
        EXPECT_EQ(a.points[i].sem, b.points[i].sem) << "i=" << i;
    }
    EXPECT_EQ(a.alpha, b.alpha);
    EXPECT_EQ(a.epc, b.epc);
}

void expect_comparisons_bitwise_equal(const GateComparison& a, const GateComparison& b) {
    EXPECT_EQ(a.gate, b.gate);
    expect_curves_bitwise_equal(a.custom.reference, b.custom.reference);
    expect_curves_bitwise_equal(a.custom.interleaved, b.custom.interleaved);
    expect_curves_bitwise_equal(a.standard.reference, b.standard.reference);
    expect_curves_bitwise_equal(a.standard.interleaved, b.standard.interleaved);
    EXPECT_EQ(a.custom.gate_error, b.custom.gate_error);
    EXPECT_EQ(a.standard.gate_error, b.standard.gate_error);
    EXPECT_EQ(a.improvement_percent, b.improvement_percent);
}

TEST(DesignPipelineDeterminism, CandidatesMatchPerCallDesign) {
    DesignPipelineOptions po;
    po.rb = tiny_rb();
    po.characterize = false;
    const DesignPipeline pipeline(exec(), defaults(), po);

    GateJob1Q job;
    job.gate_name = "x";
    job.qubit = 0;
    job.spec = tiny_spec(g::x());
    job.seeds = {7, 99};
    job.durations_dt = {64, 96};

    const PipelineResult result = pipeline.run({job});
    ASSERT_EQ(result.gates.size(), 1u);
    const GateResult1Q& res = result.gates[0];
    ASSERT_EQ(res.candidates.size(), 4u);
    EXPECT_FALSE(res.characterized);

    // Grid order is seed-major, duration-minor; every candidate must be
    // bitwise the per-call design with that (seed, duration).
    std::size_t idx = 0;
    for (const std::uint64_t seed : job.seeds) {
        for (const std::size_t dur : job.durations_dt) {
            GateDesignSpec sp = job.spec;
            sp.random_seed = seed;
            sp.duration_dt = dur;
            const DesignedGate direct =
                design_1q_gate(pipeline.design_model(), 0, "x", sp);
            const Candidate1Q& cand = res.candidates[idx++];
            EXPECT_EQ(cand.seed, seed);
            EXPECT_EQ(cand.duration_dt, dur);
            EXPECT_EQ(cand.gate.model_fid_err, direct.model_fid_err);
            EXPECT_EQ(cand.gate.optim.final_amps, direct.optim.final_amps);
        }
    }

    // best() is the model-infidelity argmin.
    for (const Candidate1Q& cand : res.candidates) {
        EXPECT_LE(res.best().model_fid_err, cand.gate.model_fid_err);
    }
}

TEST(DesignPipelineDeterminism, CharacterizationMatchesLegacyPerCallIrb) {
    // The pipeline's shared-reference IRB must be bitwise what the legacy
    // flow (fresh GateSet1Q + run_irb_1q per gate, reference re-measured
    // each time) produced.
    const GateDesignSpec spec = tiny_spec(g::x());
    const DesignedGate designed =
        design_1q_gate(device::nominal_model(exec().config()), 0, "x", spec);
    const rb::RbOptions opts = tiny_rb();

    // Legacy composition, inlined from the pre-pipeline compare_1q_gate.
    const rb::Clifford1Q group;
    const rb::GateSet1Q gates(exec(), defaults(), 0, group);
    const std::size_t cliff = group.find(ideal_1q_gate("x"));
    const linalg::Mat custom_super = exec().schedule_superop_1q(designed.schedule, 0);
    const linalg::Mat default_super = default_gate_superop_1q(exec(), defaults(), "x", 0);
    GateComparison legacy;
    legacy.gate = "x";
    legacy.custom = rb::run_irb_1q(exec(), gates, 0, custom_super, cliff, opts);
    legacy.standard = rb::run_irb_1q(exec(), gates, 0, default_super, cliff, opts);
    legacy.improvement_percent = 100.0 *
                                 (legacy.standard.gate_error - legacy.custom.gate_error) /
                                 legacy.standard.gate_error;

    DesignPipelineOptions po;
    po.rb = opts;
    const DesignPipeline pipeline(exec(), defaults(), po);
    expect_comparisons_bitwise_equal(
        pipeline.characterize_1q("x", 0, designed.schedule), legacy);

    // ... and the public wrapper routes through the pipeline identically.
    expect_comparisons_bitwise_equal(
        compare_1q_gate(exec(), defaults(), "x", 0, designed.schedule, group, opts), legacy);
}

TEST(DesignPipelineDeterminism, BatchBitIdenticalAcrossPoolSizes) {
    auto run_batch = [] {
        DesignPipelineOptions po;
        po.rb = tiny_rb();
        const DesignPipeline pipeline(exec(), defaults(), po);

        GateJob1Q x_job;
        x_job.gate_name = "x";
        x_job.spec = tiny_spec(g::x());
        x_job.seeds = {1, 2};

        GateJob1Q sx_job;
        sx_job.gate_name = "sx";
        sx_job.spec = tiny_spec(g::sx());
        sx_job.characterize = false;

        return pipeline.run({x_job, sx_job});
    };

    runtime::ScopedPoolSize serial(1);
    const PipelineResult ref = run_batch();
    for (std::size_t n : {std::size_t{2}, std::size_t{4}}) {
        runtime::ScopedPoolSize scoped(n);
        const PipelineResult got = run_batch();
        ASSERT_EQ(got.gates.size(), ref.gates.size());
        for (std::size_t i = 0; i < ref.gates.size(); ++i) {
            const GateResult1Q& a = ref.gates[i];
            const GateResult1Q& b = got.gates[i];
            ASSERT_EQ(a.candidates.size(), b.candidates.size()) << "pool " << n;
            for (std::size_t c = 0; c < a.candidates.size(); ++c) {
                EXPECT_EQ(a.candidates[c].gate.model_fid_err,
                          b.candidates[c].gate.model_fid_err)
                    << "pool " << n << " gate " << i << " cand " << c;
                EXPECT_EQ(a.candidates[c].gate.optim.final_amps,
                          b.candidates[c].gate.optim.final_amps)
                    << "pool " << n << " gate " << i << " cand " << c;
            }
            EXPECT_EQ(a.best_index, b.best_index) << "pool " << n;
            ASSERT_EQ(a.characterized, b.characterized) << "pool " << n;
            if (a.characterized) expect_comparisons_bitwise_equal(a.comparison, b.comparison);
        }
    }
}

TEST(DesignPipelineDeterminism, SharedReferenceIsByteIdenticalToFreshReference) {
    DesignPipelineOptions po;
    po.rb = tiny_rb();
    const DesignPipeline pipeline(exec(), defaults(), po);

    // Any two characterizations on the same qubit share one reference...
    pulse::Schedule idle("idle_x");
    idle.insert(0, pulse::Delay{16, pulse::drive_channel(0)});
    const GateComparison a = pipeline.characterize_1q("x", 0, idle);
    const GateComparison b = pipeline.characterize_1q("sx", 0, idle);
    expect_curves_bitwise_equal(a.custom.reference, b.custom.reference);
    expect_curves_bitwise_equal(a.custom.reference, a.standard.reference);

    // ...and that shared curve is bitwise a freshly measured one.
    const rb::Clifford1Q group;
    const rb::GateSet1Q gates(exec(), defaults(), 0, group);
    expect_curves_bitwise_equal(a.custom.reference,
                                rb::run_rb_1q(exec(), gates, 0, po.rb));
}

TEST(DesignPipelineDeterminism, ExternallySharedContextsAreByteIdenticalToPrivate) {
    // The calibration service hands one make_contexts() bundle to every
    // pipeline it builds for a device snapshot; sharing must be bitwise
    // invisible relative to private per-pipeline bundles.
    DesignPipelineOptions po;
    po.rb = tiny_rb();
    pulse::Schedule idle("idle_x");
    idle.insert(0, pulse::Delay{16, pulse::drive_channel(0)});

    auto shared = DesignPipeline::make_contexts();
    const DesignPipeline first(exec(), defaults(), shared, po);
    const DesignPipeline second(exec(), defaults(), shared, po);
    EXPECT_EQ(first.contexts().get(), second.contexts().get());

    const GateComparison warm = first.characterize_1q("x", 0, idle);
    // `second` reads the bundle `first` filled -- no re-measurement -- and
    // must still be byte-identical to a fully private pipeline.
    const GateComparison reused = second.characterize_1q("x", 0, idle);
    const DesignPipeline isolated(exec(), defaults(), po);
    const GateComparison fresh = isolated.characterize_1q("x", 0, idle);
    expect_comparisons_bitwise_equal(warm, reused);
    expect_comparisons_bitwise_equal(warm, fresh);

    // Null contexts fall back to a private bundle.
    const DesignPipeline fallback(exec(), defaults(), nullptr, po);
    EXPECT_NE(fallback.contexts().get(), shared.get());
    expect_comparisons_bitwise_equal(fallback.characterize_1q("x", 0, idle), warm);
}

TEST(DesignPipelineDeterminism, IrbCustomUsesTheSharedReference) {
    DesignPipelineOptions po;
    po.rb = tiny_rb();
    const DesignPipeline pipeline(exec(), defaults(), po);
    pulse::Schedule idle("idle_x");
    idle.insert(0, pulse::Delay{16, pulse::drive_channel(0)});
    const rb::IrbResult solo = pipeline.irb_custom_1q("x", 0, idle);
    const GateComparison full = pipeline.characterize_1q("x", 0, idle);
    expect_curves_bitwise_equal(solo.reference, full.custom.reference);
    expect_curves_bitwise_equal(solo.interleaved, full.custom.interleaved);
    EXPECT_EQ(solo.gate_error, full.custom.gate_error);
}

}  // namespace
}  // namespace qoc::experiments
