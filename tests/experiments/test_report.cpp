/// Smoke/format tests of the console reporting helpers every bench uses.

#include <gtest/gtest.h>

#include "experiments/report.hpp"

namespace qoc::experiments {
namespace {

TEST(Report, ErrorRateFormatsAcrossDecades) {
    EXPECT_EQ(format_error_rate(1.97e-4, 4.94e-5), "1.97(49)e-04");
    EXPECT_EQ(format_error_rate(6.18e-3, 1.33e-3), "6.18(133)e-03");
    EXPECT_EQ(format_error_rate(1.0, 0.1), "1.00(10)e+00");
    // Tiny error shows as (0) rather than crashing.
    EXPECT_EQ(format_error_rate(2.0e-4, 1e-9), "2.00(0)e-04");
}

TEST(Report, TableHandlesRaggedAndUnicodeSafeWidths) {
    testing::internal::CaptureStdout();
    print_table("t", {"a", "long header"},
                {{"1", "2"}, {"wide cell value", "x"}, {"short"}});
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("long header"), std::string::npos);
    EXPECT_NE(out.find("wide cell value"), std::string::npos);
}

TEST(Report, RbCurvePrintsFitAndPoints) {
    rb::RbCurve curve;
    curve.a = 0.5;
    curve.alpha = 0.995;
    curve.b = 0.5;
    curve.epc = 2.5e-3;
    curve.epc_err = 1e-4;
    curve.points = {{1, 0.99, 0.001}, {50, 0.89, 0.003}};
    testing::internal::CaptureStdout();
    print_rb_curve("label", curve);
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("EPC"), std::string::npos);
    EXPECT_NE(out.find("m=   50"), std::string::npos);
}

TEST(Report, HistogramBarsScaleWithProbability) {
    device::Counts c;
    c.shots = 100;
    c.histogram["0"] = 90;
    c.histogram["1"] = 10;
    testing::internal::CaptureStdout();
    print_histogram("h", c);
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("90.00%"), std::string::npos);
    EXPECT_NE(out.find("10.00%"), std::string::npos);
}

TEST(Report, PulseRenderingHandlesConstantsAndEmpty) {
    testing::internal::CaptureStdout();
    print_pulse("flat", std::vector<double>(16, 0.5));
    print_pulse("empty", {});
    print_waveform("wave", {{0.1, -0.1}, {0.2, 0.0}});
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("flat"), std::string::npos);
    EXPECT_NE(out.find("wave"), std::string::npos);
}

}  // namespace
}  // namespace qoc::experiments
