/// `qoc::runtime::WorkspacePool`: LIFO reuse, high-water accounting, lease
/// move semantics, and bounded growth under concurrent acquire storms.

#include "runtime/workspace_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "runtime/task_pool.hpp"

namespace qoc::runtime {
namespace {

struct Scratch {
    static std::atomic<int> constructed;
    Scratch() { constructed.fetch_add(1, std::memory_order_relaxed); }
    int value = 0;
};
std::atomic<int> Scratch::constructed{0};

TEST(WorkspacePool, SequentialLeasesReuseOneWorkspace) {
    WorkspacePool<Scratch> pool;
    Scratch* first = nullptr;
    {
        auto lease = pool.acquire();
        first = &*lease;
        lease->value = 7;
    }
    for (int i = 0; i < 10; ++i) {
        auto lease = pool.acquire();
        EXPECT_EQ(&*lease, first) << "LIFO must hand back the hot workspace";
        EXPECT_EQ(lease->value, 7) << "workspaces keep their scratch state";
    }
    EXPECT_EQ(pool.created(), 1u);
}

TEST(WorkspacePool, ConcurrentHoldersGetDistinctWorkspaces) {
    WorkspacePool<Scratch> pool;
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
    EXPECT_NE(&*a, &*b);
    EXPECT_NE(&*b, &*c);
    EXPECT_NE(&*a, &*c);
    EXPECT_EQ(pool.created(), 3u) << "created() is the concurrent high-water mark";
}

TEST(WorkspacePool, LifoReturnsMostRecentlyReleased) {
    WorkspacePool<Scratch> pool;
    auto a = pool.acquire();  // held for the whole test
    Scratch* pb = nullptr;
    {
        auto b = pool.acquire();
        pb = &*b;
    }  // b released most recently
    auto c = pool.acquire();
    EXPECT_EQ(&*c, pb) << "cache-warm workspace must come back first";
    EXPECT_EQ(pool.created(), 2u);
}

TEST(WorkspacePool, MovedFromLeaseDoesNotDoubleRelease) {
    WorkspacePool<Scratch> pool;
    auto a = pool.acquire();
    Scratch* ws = &*a;
    auto moved = std::move(a);
    EXPECT_EQ(&*moved, ws);
    // Destroying both `a` (empty) and `moved` must release exactly once:
    // the next two acquires then see one free + one fresh workspace.
    {
        auto tmp = std::move(moved);
    }
    auto x = pool.acquire();
    auto y = pool.acquire();
    EXPECT_NE(&*x, &*y);
    EXPECT_EQ(pool.created(), 2u);
}

TEST(WorkspacePool, ParallelAcquireStormBoundedByConcurrency) {
    // Under a task-pool fan-out the arena may never create more workspaces
    // than there are concurrent bodies -- that bound is the whole point of
    // pooling (the old code created one per OpenMP thread unconditionally).
    TaskPool pool(4);
    WorkspacePool<Scratch> arena;
    std::atomic<int> sum{0};
    pool.parallel_for(0, 256, [&](std::size_t i) {
        auto lease = arena.acquire();
        lease->value = static_cast<int>(i);
        sum.fetch_add(lease->value, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 255 * 256 / 2);
    EXPECT_LE(arena.created(), pool.size());
    EXPECT_GE(arena.created(), 1u);
}

}  // namespace
}  // namespace qoc::runtime
