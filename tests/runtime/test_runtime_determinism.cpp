/// The runtime's two cross-cutting contracts, pinned at the runtime layer
/// itself (engine-level 1-vs-N suites live with GRAPE/RB):
///
///  1. Determinism: a parallel_for fan-out writing per-index slots plus an
///     ordered reduction is bitwise identical for any pool size, any number
///     of repeats, and any submission interleaving.
///  2. Observability: the submitter's `qoc::obs` span id rides along with
///     every task, so trace parent links survive task boundaries (including
///     nested submits and parallel_for bodies).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/ordered.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::runtime {
namespace {

/// A deliberately reassociation-sensitive per-index payload: accumulating
/// these in any order other than index order changes the double result.
double payload(std::size_t i) {
    double x = 1.0 + static_cast<double>(i % 7) * 1e-13;
    for (int k = 0; k < 50; ++k) x = std::sqrt(x * x + 1e-3) - 1e-3 / (2.0 * x);
    return x * std::pow(10.0, static_cast<double>(i % 5) - 2.0);
}

double fan_out_sum(TaskPool& pool, std::size_t n) {
    std::vector<double> slots(n, 0.0);
    pool.parallel_for(0, n, [&slots](std::size_t i) { slots[i] = payload(i); });
    return ordered_sum(slots);
}

TEST(RuntimeDeterminism, ParallelForOrderedSumBitIdenticalAcrossPoolSizes) {
    TaskPool serial(1);
    const double ref = fan_out_sum(serial, 333);
    for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
        TaskPool pool(n);
        for (int rep = 0; rep < 3; ++rep) {
            const double got = fan_out_sum(pool, 333);
            EXPECT_EQ(ref, got) << "pool size " << n << " rep " << rep;
        }
    }
}

TEST(RuntimeDeterminism, SubmitFanOutBitIdenticalAcrossPoolSizes) {
    auto run = [](TaskPool& pool) {
        std::vector<Future<double>> futs;
        futs.reserve(64);
        for (std::size_t i = 0; i < 64; ++i) {
            futs.push_back(pool.submit([i] { return payload(i); }));
        }
        std::vector<double> slots;
        slots.reserve(64);
        for (auto& f : futs) slots.push_back(f.get());
        return ordered_sum(slots);
    };
    TaskPool serial(1);
    const double ref = run(serial);
    for (std::size_t n : {std::size_t{2}, std::size_t{8}}) {
        TaskPool pool(n);
        EXPECT_EQ(ref, run(pool)) << "pool size " << n;
    }
}

TEST(RuntimeDeterminism, SpanParentPropagatesAcrossTaskBoundaries) {
    obs::reset_for_testing();
    obs::enable_tracing("");
    std::uint64_t root_id = 0;
    {
        TaskPool pool(4);
        obs::Span root("root");
        root_id = obs::current_span();
        ASSERT_NE(root_id, 0u);
        TaskGroup group(pool);
        for (int t = 0; t < 8; ++t) {
            group.run([] { obs::Span child("child"); });
        }
        group.wait();
    }
    const auto events = obs::snapshot_trace_events();
    std::size_t children = 0;
    for (const auto& e : events) {
        if (std::string_view(e.name) == "child") {
            ++children;
            EXPECT_EQ(e.parent, root_id)
                << "task-executed span must parent to the submitter's span";
        }
    }
    EXPECT_EQ(children, 8u);
    obs::reset_for_testing();
}

TEST(RuntimeDeterminism, SpanParentPropagatesThroughNestedSubmits) {
    obs::reset_for_testing();
    obs::enable_tracing("");
    {
        TaskPool pool(2);
        obs::Span root("root");
        auto outer = pool.submit([&pool] {
            obs::Span mid("mid");
            auto inner = pool.submit([] { obs::Span leaf("leaf"); });
            inner.get();
        });
        outer.get();
    }
    const auto events = obs::snapshot_trace_events();
    std::uint64_t root_id = 0, mid_id = 0;
    for (const auto& e : events) {
        if (std::string_view(e.name) == "root") root_id = e.id;
        if (std::string_view(e.name) == "mid") mid_id = e.id;
    }
    ASSERT_NE(root_id, 0u);
    ASSERT_NE(mid_id, 0u);
    for (const auto& e : events) {
        if (std::string_view(e.name) == "mid") {
            EXPECT_EQ(e.parent, root_id);
        }
        if (std::string_view(e.name) == "leaf") {
            EXPECT_EQ(e.parent, mid_id);
        }
    }
    obs::reset_for_testing();
}

}  // namespace
}  // namespace qoc::runtime
