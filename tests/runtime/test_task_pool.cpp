/// `qoc::runtime::TaskPool` semantics: futures and exception propagation,
/// helping waits (no deadlock at any pool size, including 1), nested
/// submit-from-task, oversubscription stress, `parallel_for` coverage and
/// its serial fast path, and the QOC_THREADS parser.

#include "runtime/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/ordered.hpp"

namespace qoc::runtime {
namespace {

TEST(TaskPool, SizeCountsTheSubmittingThread) {
    TaskPool p1(1);
    EXPECT_EQ(p1.size(), 1u);
    TaskPool p4(4);
    EXPECT_EQ(p4.size(), 4u);
}

TEST(TaskPool, FutureReturnsTaskValue) {
    TaskPool pool(3);
    auto f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

TEST(TaskPool, FutureGetHelpsWithZeroWorkers) {
    // Pool size 1 has no worker threads: the submitted task can only run
    // when get() helps.  A non-helping wait would deadlock here.
    TaskPool pool(1);
    auto f = pool.submit([] { return std::string("ran inline"); });
    EXPECT_EQ(f.get(), "ran inline");
}

TEST(TaskPool, FuturePropagatesTaskException) {
    for (std::size_t n : {std::size_t{1}, std::size_t{4}}) {
        TaskPool pool(n);
        auto f = pool.submit([]() -> int { throw std::runtime_error("task failed"); });
        EXPECT_THROW(
            {
                try {
                    f.get();
                } catch (const std::runtime_error& e) {
                    EXPECT_STREQ(e.what(), "task failed");
                    throw;
                }
            },
            std::runtime_error);
    }
}

TEST(TaskPool, NestedSubmitFromInsideTask) {
    // A task that submits subtasks and waits on them (the design pipeline's
    // chain tasks do exactly this).  Helping waits make it safe even when
    // every thread of the pool is already busy.
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        TaskPool pool(n);
        auto outer = pool.submit([&pool] {
            std::vector<Future<int>> inner;
            inner.reserve(8);
            for (int i = 0; i < 8; ++i) {
                inner.push_back(pool.submit([i] { return i * i; }));
            }
            int sum = 0;
            for (auto& f : inner) sum += f.get();
            return sum;
        });
        EXPECT_EQ(outer.get(), 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49) << "pool size " << n;
    }
}

TEST(TaskPool, OversubscriptionStress) {
    // Many more tasks than threads, each spawning a subtask: exercises the
    // injection queue, stealing and the wake protocol under churn.
    TaskPool pool(8);
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    std::vector<Future<int>> futs;
    futs.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futs.push_back(pool.submit([&pool, &ran, i] {
            ran.fetch_add(1, std::memory_order_relaxed);
            auto sub = pool.submit([i] { return 2 * i; });
            return sub.get() + 1;
        }));
    }
    long total = 0;
    for (auto& f : futs) total += f.get();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_EQ(total, 2L * (kTasks * (kTasks - 1) / 2) + kTasks);
}

TEST(TaskGroup, WaitsForAllTasks) {
    TaskPool pool(4);
    constexpr std::size_t kN = 64;
    std::vector<int> slots(kN, 0);
    {
        TaskGroup group(pool);
        for (std::size_t i = 0; i < kN; ++i) {
            group.run([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
        }
        group.wait();
    }
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(slots[i], static_cast<int>(i) + 1) << "slot " << i;
    }
}

TEST(TaskGroup, WaitRethrowsFirstTaskException) {
    TaskPool pool(2);
    TaskGroup group(pool);
    group.run([] {});
    group.run([] { throw std::logic_error("group task failed"); });
    EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        TaskPool pool(n);
        constexpr std::size_t kN = 500;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallel_for(0, kN, [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "pool size " << n << " index " << i;
        }
    }
}

TEST(ParallelFor, EmptyAndSingleIndexRanges) {
    TaskPool pool(4);
    int ran = 0;
    pool.parallel_for(5, 5, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    pool.parallel_for(7, 8, [&](std::size_t i) {
        EXPECT_EQ(i, 7u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, RethrowsBodyExceptionAfterCompletingAllIndices) {
    // No cancellation: every index runs even when one throws (the engines
    // rely on complete per-index output slots).
    for (std::size_t n : {std::size_t{1}, std::size_t{4}}) {
        TaskPool pool(n);
        constexpr std::size_t kN = 64;
        std::vector<std::atomic<int>> hits(kN);
        auto body = [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            if (i == 13) throw std::runtime_error("body failed");
        };
        EXPECT_THROW(pool.parallel_for(0, kN, body), std::runtime_error);
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "pool size " << n << " index " << i;
        }
    }
}

TEST(ScopedPoolSizeTest, PinsAndRestoresGlobalPool) {
    const std::size_t before = TaskPool::global().size();
    {
        ScopedPoolSize scoped(3);
        EXPECT_EQ(TaskPool::global().size(), 3u);
        {
            ScopedPoolSize nested(1);
            EXPECT_EQ(TaskPool::global().size(), 1u);
        }
        EXPECT_EQ(TaskPool::global().size(), 3u);
    }
    EXPECT_EQ(TaskPool::global().size(), before);
}

TEST(ParseThreadCount, AcceptsPositiveIntegersRejectsGarbage) {
    EXPECT_EQ(detail::parse_thread_count("4"), 4u);
    EXPECT_EQ(detail::parse_thread_count("1"), 1u);
    EXPECT_EQ(detail::parse_thread_count("16"), 16u);
    EXPECT_EQ(detail::parse_thread_count(nullptr), 0u);
    EXPECT_EQ(detail::parse_thread_count(""), 0u);
    EXPECT_EQ(detail::parse_thread_count("0"), 0u);
    EXPECT_EQ(detail::parse_thread_count("-2"), 0u);
    EXPECT_EQ(detail::parse_thread_count("abc"), 0u);
    EXPECT_EQ(detail::parse_thread_count("4x"), 0u);
}

TEST(Ordered, SumAndMeanAreSerialIndexOrder) {
    // ordered_sum must associate strictly left-to-right: compare against a
    // hand-rolled serial loop on values chosen to expose reassociation.
    std::vector<double> xs = {1e16, 1.0, -1e16, 1.0, 0.5, 1e-8};
    double serial = 0.0;
    for (const double x : xs) serial += x;
    EXPECT_EQ(ordered_sum(xs), serial);
    EXPECT_EQ(ordered_mean(xs), serial / static_cast<double>(xs.size()));
}

}  // namespace
}  // namespace qoc::runtime
