#include "rb/rb.hpp"

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

const Clifford1Q& c1() {
    static Clifford1Q instance;
    return instance;
}

device::BackendConfig test_device() {
    auto cfg = device::ibmq_montreal();
    return cfg;
}

TEST(RbFit, RecoversKnownDecay) {
    RbCurve curve;
    const double A = 0.48, alpha = 0.997, B = 0.5;
    for (std::size_t m : {1u, 20u, 50u, 100u, 200u, 400u, 800u}) {
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = A * std::pow(alpha, m) + B;
        pt.sem = 1e-4;
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 2.0);
    EXPECT_NEAR(curve.alpha, alpha, 1e-5);
    EXPECT_NEAR(curve.epc, 0.5 * (1.0 - alpha), 1e-5);
}

TEST(RbFit, NeedsEnoughPoints) {
    RbCurve curve;
    curve.points.push_back({1, 0.9, 0.01});
    EXPECT_THROW(fit_rb_curve(curve, 2.0), std::invalid_argument);
}

TEST(Rb1Q, DepolarizingNoiseRecovered) {
    // Inject a known depolarizing error per Clifford on an otherwise ideal
    // gate set; RB must recover EPC = (d-1)/d * p_dep... with the exact
    // relation epc = p/2 for depolarizing probability p on d=2.
    device::BackendConfig cfg = test_device();
    for (auto& q : cfg.qubits) {
        q.t1 = 1e12;
        q.t2 = 1e12;
        q.readout_p01 = 0.0;
        q.readout_p10 = 0.0;
    }
    cfg.levels = 2;
    device::PulseExecutor exec(cfg);

    // Ideal Clifford superops with injected depolarizing channel: build a
    // fake GateSet via the public API by constructing ideal x/sx schedules?
    // Simpler: use the real calibrated gates on the noise-free device and
    // interleave depolarizing noise by hand through run_irb... Instead we
    // test the full pipeline below; here test the estimator math directly.
    const double p = 0.002;
    const Mat dep = quantum::depolarizing_superop(2, p);
    RbCurve curve;
    // Analytic survival: each Clifford applies dep once; after m+1 gates
    // starting from |0>: P0 = (1-p)^{m+1} + (1 - (1-p)^{m+1})/2.
    for (std::size_t m : {1u, 10u, 50u, 100u, 200u, 400u}) {
        const double keep = std::pow(1.0 - p, static_cast<double>(m + 1));
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = keep + 0.5 * (1.0 - keep);
        pt.sem = 1e-5;
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 2.0);
    EXPECT_NEAR(curve.alpha, 1.0 - p, 1e-6);
    EXPECT_NEAR(curve.epc, 0.5 * p, 1e-6);
    (void)exec;
    (void)dep;
}

class RbPipeline : public ::testing::Test {
protected:
    static device::PulseExecutor& exec() {
        static device::PulseExecutor instance{test_device()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
        return map;
    }
};

TEST_F(RbPipeline, StandardRbProducesDecayingCurve) {
    GateSet1Q gates(exec(), defaults(), 0, c1());
    RbOptions opts;
    opts.lengths = {1, 50, 150, 300, 600};
    opts.seeds_per_length = 4;
    opts.shots = 2048;
    const RbCurve curve = run_rb_1q(exec(), gates, 0, opts);

    // Survival decreases with length.
    EXPECT_GT(curve.points.front().mean_survival, curve.points.back().mean_survival);
    // alpha in a physical range and EPC at the paper's 1e-4..1e-3 scale.
    EXPECT_GT(curve.alpha, 0.995);
    EXPECT_LT(curve.alpha, 1.0);
    EXPECT_GT(curve.epc, 2e-5);
    EXPECT_LT(curve.epc, 3e-3);
}

TEST_F(RbPipeline, IrbGateErrorMatchesDirectFidelity) {
    // Interleave the default X gate; the IRB gate error must agree with the
    // directly computed average gate infidelity to within error bars scale.
    GateSet1Q gates(exec(), defaults(), 0, c1());
    const Mat x_super = exec().schedule_superop_1q(defaults().get("x", {0}), 0);
    const std::size_t x_index = c1().find(g::x());

    RbOptions opts;
    opts.lengths = {1, 200, 500, 1000, 2000, 3000};
    opts.seeds_per_length = 8;
    opts.shots = 8192;
    const IrbResult irb = run_irb_1q(exec(), gates, 0, x_super, x_index, opts);

    Mat x_full = Mat::identity(exec().config().levels);
    x_full.set_block(0, 0, g::x());
    const double direct_err = 1.0 - quantum::average_gate_fidelity_superop(x_full, x_super);

    EXPECT_GT(irb.gate_error, 3.0 * irb.gate_error_err);  // clearly resolved
    // IRB is a depolarizing-model estimate; for coherent/leakage-tinged
    // noise it agrees with the direct average-gate infidelity to within a
    // small factor (Magesan et al. discuss the systematic bounds).
    EXPECT_GT(irb.gate_error, direct_err / 4.0);
    EXPECT_LT(irb.gate_error, direct_err * 4.0);
    // Interleaved curve decays faster than the reference.
    EXPECT_LT(irb.interleaved.alpha, irb.reference.alpha);
}

TEST_F(RbPipeline, ReproducibleWithSameSeed) {
    GateSet1Q gates(exec(), defaults(), 0, c1());
    RbOptions opts;
    opts.lengths = {1, 100, 300};
    opts.seeds_per_length = 3;
    const RbCurve a = run_rb_1q(exec(), gates, 0, opts);
    const RbCurve b = run_rb_1q(exec(), gates, 0, opts);
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.points[i].mean_survival, b.points[i].mean_survival);
    }
}

TEST_F(RbPipeline, TwoQubitRbRuns) {
    static Clifford2Q c2(c1());
    GateSet2Q gates(exec(), defaults(), c2);
    RbOptions opts;
    opts.lengths = {1, 5, 10, 20, 35};
    opts.seeds_per_length = 3;
    opts.shots = 2048;
    const RbCurve curve = run_rb_2q(exec(), gates, opts);
    EXPECT_GT(curve.points.front().mean_survival, curve.points.back().mean_survival);
    EXPECT_GT(curve.alpha, 0.9);
    EXPECT_LT(curve.alpha, 1.0);
    // 2Q EPC at the paper's 1e-3..1e-2 scale.
    EXPECT_GT(curve.epc, 5e-4);
    EXPECT_LT(curve.epc, 6e-2);
}

}  // namespace
}  // namespace qoc::rb
