#include "rb/clifford1q.hpp"
#include "rb/clifford2q.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "linalg/kron.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

class CliffordTest : public ::testing::Test {
protected:
    static const Clifford1Q& c1() {
        static Clifford1Q instance;
        return instance;
    }
    static const Clifford2Q& c2() {
        static Clifford2Q instance(c1());
        return instance;
    }
};

TEST_F(CliffordTest, GroupOrder24) {
    EXPECT_EQ(c1().size(), 24u);
    std::set<std::string> keys;
    for (std::size_t i = 0; i < 24; ++i) keys.insert(phase_hash(c1().unitary(i)));
    EXPECT_EQ(keys.size(), 24u);
}

TEST_F(CliffordTest, ContainsStandardGates) {
    EXPECT_NO_THROW(c1().find(g::x()));
    EXPECT_NO_THROW(c1().find(g::y()));
    EXPECT_NO_THROW(c1().find(g::z()));
    EXPECT_NO_THROW(c1().find(g::h()));
    EXPECT_NO_THROW(c1().find(g::s()));
    EXPECT_NO_THROW(c1().find(g::sx()));
    EXPECT_THROW(c1().find(g::t()), std::invalid_argument);
}

TEST_F(CliffordTest, MultiplicationTableConsistent) {
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<std::size_t> dist(0, 23);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t i = dist(rng), j = dist(rng);
        const std::size_t k = c1().multiply(i, j);
        EXPECT_TRUE(linalg::equal_up_to_phase(c1().unitary(i) * c1().unitary(j),
                                              c1().unitary(k), 1e-9));
    }
}

TEST_F(CliffordTest, InverseTableConsistent) {
    for (std::size_t i = 0; i < 24; ++i) {
        EXPECT_EQ(c1().multiply(i, c1().inverse(i)), c1().identity_index());
        EXPECT_EQ(c1().multiply(c1().inverse(i), i), c1().identity_index());
    }
}

TEST_F(CliffordTest, DecompositionsVerified) {
    // The constructor already asserts decomposition == unitary up to phase;
    // spot-check pulse counts are small (<= 3 physical pulses).
    for (std::size_t i = 0; i < 24; ++i) {
        EXPECT_LE(c1().pulse_count(i), 3u) << "Clifford " << i;
    }
    EXPECT_EQ(c1().pulse_count(c1().identity_index()), 0u);
}

TEST_F(CliffordTest, RandomWordsStayInGroup) {
    std::mt19937_64 rng(17);
    std::uniform_int_distribution<std::size_t> dist(0, 23);
    std::size_t acc = c1().identity_index();
    Mat mat_acc = Mat::identity(2);
    for (int step = 0; step < 100; ++step) {
        const std::size_t c = dist(rng);
        acc = c1().multiply(c, acc);
        mat_acc = phase_normalize(c1().unitary(c) * mat_acc);
    }
    EXPECT_TRUE(linalg::equal_up_to_phase(mat_acc, c1().unitary(acc), 1e-8));
}

TEST_F(CliffordTest, TwoQubitGroupOrder) {
    // find() builds the full lookup and throws on duplicates, so a single
    // successful lookup validates all 11520 elements are distinct.
    EXPECT_NO_THROW(c2().find(g::cx()));
    EXPECT_EQ(c2().size(), 11520u);
}

TEST_F(CliffordTest, TwoQubitContainsNamedGates) {
    EXPECT_NO_THROW(c2().find(g::cx()));
    EXPECT_NO_THROW(c2().find(g::cz()));
    EXPECT_NO_THROW(c2().find(g::swap()));
    EXPECT_NO_THROW(c2().find(g::iswap()));
    EXPECT_NO_THROW(c2().find(linalg::kron(g::h(), g::s())));
}

TEST_F(CliffordTest, TwoQubitIdentityIndex) {
    const std::size_t id = c2().identity_index();
    EXPECT_TRUE(linalg::equal_up_to_phase(c2().unitary(id), Mat::identity(4), 1e-10));
}

TEST_F(CliffordTest, TwoQubitDecompositionMatchesUnitary) {
    std::mt19937_64 rng(23);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t i = c2().sample(rng);
        Mat u = Mat::identity(4);
        for (const TwoQubitGate& gate : c2().decomposition(i)) {
            Mat m;
            if (gate.name == "rz") {
                m = quantum::op_on_qubit(g::rz(*gate.param), gate.qubits[0], 2);
            } else if (gate.name == "sx") {
                m = quantum::op_on_qubit(g::sx(), gate.qubits[0], 2);
            } else if (gate.name == "x") {
                m = quantum::op_on_qubit(g::x(), gate.qubits[0], 2);
            } else if (gate.name == "cx") {
                m = g::cx();
            } else {
                FAIL() << "unknown gate " << gate.name;
            }
            u = m * u;
        }
        EXPECT_TRUE(linalg::equal_up_to_phase(u, c2().unitary(i), 1e-8)) << "element " << i;
    }
}

TEST_F(CliffordTest, TwoQubitInverse) {
    std::mt19937_64 rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t i = c2().sample(rng);
        const std::size_t inv = c2().inverse(i);
        EXPECT_TRUE(linalg::equal_up_to_phase(c2().unitary(i) * c2().unitary(inv),
                                              Mat::identity(4), 1e-8));
    }
}

TEST_F(CliffordTest, TwoQubitCxCountByClass) {
    EXPECT_EQ(c2().cx_count(0), 0u);             // single-qubit class
    EXPECT_EQ(c2().cx_count(576), 1u);           // CNOT class start
    EXPECT_EQ(c2().cx_count(576 + 5184), 2u);    // iSWAP class start
    EXPECT_EQ(c2().cx_count(11520 - 1), 3u);     // SWAP class
    EXPECT_THROW(c2().cx_count(11520), std::out_of_range);
}

TEST_F(CliffordTest, PhaseHashInvariantUnderGlobalPhase) {
    const Mat u = g::h();
    const Mat v = std::exp(linalg::cplx{0.0, 1.234}) * u;
    EXPECT_EQ(phase_hash(u), phase_hash(v));
    EXPECT_NE(phase_hash(g::h()), phase_hash(g::x()));
}

TEST_F(CliffordTest, SamplingCoversClasses) {
    std::mt19937_64 rng(7);
    std::array<int, 4> class_counts{};
    for (int i = 0; i < 4000; ++i) {
        const std::size_t idx = c2().sample(rng);
        if (idx < 576) class_counts[0]++;
        else if (idx < 576 + 5184) class_counts[1]++;
        else if (idx < 576 + 2 * 5184) class_counts[2]++;
        else class_counts[3]++;
    }
    // Expected fractions 5%, 45%, 45%, 5%.
    EXPECT_NEAR(class_counts[0] / 4000.0, 0.05, 0.02);
    EXPECT_NEAR(class_counts[1] / 4000.0, 0.45, 0.04);
    EXPECT_NEAR(class_counts[2] / 4000.0, 0.45, 0.04);
    EXPECT_NEAR(class_counts[3] / 4000.0, 0.05, 0.02);
}

}  // namespace
}  // namespace qoc::rb
