#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "linalg/kron.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop.hpp"
#include "rb/tomography.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

TEST(Ptm2qMath, IdentityAndCx) {
    EXPECT_TRUE(ptm_of_unitary_2q(Mat::identity(4)).approx_equal(Mat::identity(16), 1e-12));
    const Mat r = ptm_of_unitary_2q(g::cx());
    // CX maps IZ->ZZ (index of I,Z = 0*4+3 = 3; Z,Z = 3*4+3 = 15).
    EXPECT_NEAR(r(15, 3).real(), 1.0, 1e-12);
    // CX maps XI->XX (X,I = 4; X,X = 5).
    EXPECT_NEAR(r(5, 4).real(), 1.0, 1e-12);
    // PTM of a unitary is orthogonal on the full 16-dim space.
    EXPECT_TRUE((r.transpose() * r).approx_equal(Mat::identity(16), 1e-10));
}

TEST(Ptm2qMath, FidelityMatchesUnitaryFormula) {
    for (const Mat& u : {g::cx(), g::cz(), linalg::kron(g::h(), g::s()), g::iswap()}) {
        const double via_ptm = avg_fidelity_from_ptm_2q(ptm_of_unitary_2q(u), g::cx());
        const double direct = quantum::average_gate_fidelity(g::cx(), u);
        EXPECT_NEAR(via_ptm, direct, 1e-10);
    }
}

class Tomography2qTest : public ::testing::Test {
protected:
    static device::PulseExecutor& exec() {
        static device::PulseExecutor instance{device::ibmq_montreal()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
        return map;
    }
};

TEST_F(Tomography2qTest, IdealCxChannelReconstructed) {
    // Feed the NOISELESS CX superoperator through the (noisy-SPAM)
    // tomography pipeline: the estimate must be close to 1 and the key PTM
    // entries must carry CX's structure.
    const Mat ideal = quantum::unitary_superop(g::cx());
    const auto res = process_tomography_2q(exec(), defaults(), ideal, g::cx(),
                                           {.shots = 1 << 14});
    EXPECT_GT(res.avg_gate_fidelity, 0.97);
    EXPECT_GT(res.ptm(15, 3).real(), 0.9);   // IZ -> ZZ
    EXPECT_GT(res.ptm(5, 4).real(), 0.9);    // XI -> XX
}

TEST_F(Tomography2qTest, DefaultCxMeasuredNearDirectFidelity) {
    const Mat sup = exec().schedule_superop_2q(defaults().get("cx", {0, 1}));
    const double direct = quantum::average_gate_fidelity_superop(g::cx(), sup);
    const auto res =
        process_tomography_2q(exec(), defaults(), sup, g::cx(), {.shots = 1 << 14});
    // Tomography carries a ~1e-2 SPAM floor on two qubits; require agreement
    // at that scale.
    EXPECT_NEAR(res.avg_gate_fidelity, direct, 0.03);
}

TEST_F(Tomography2qTest, DistinguishesCxFromIdentity) {
    const Mat ident_chan = Mat::identity(16);
    const auto res = process_tomography_2q(exec(), defaults(), ident_chan, g::cx(),
                                           {.shots = 1 << 13});
    // F_avg(CX target, identity channel) = (4 * (4/16) + 1)/5 = 0.4.
    EXPECT_NEAR(res.avg_gate_fidelity, 0.4, 0.05);
}

}  // namespace
}  // namespace qoc::rb
