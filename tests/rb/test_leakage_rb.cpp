#include "rb/leakage_rb.hpp"

#include <gtest/gtest.h>

#include "device/calibration.hpp"

namespace qoc::rb {
namespace {

const Clifford1Q& c1() {
    static Clifford1Q instance;
    return instance;
}

TEST(LeakageRb, LeakageGrowsWithSequenceLength) {
    device::PulseExecutor exec(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(exec);
    GateSet1Q gates(exec, defaults, 0, c1());
    RbOptions opts;
    opts.lengths = {1, 50, 150, 400, 800};
    opts.seeds_per_length = 6;
    const auto res = run_leakage_rb_1q(exec, gates, opts);
    ASSERT_EQ(res.leakage_population.size(), 5u);
    EXPECT_GT(res.leakage_population.back(), res.leakage_population.front());
    EXPECT_GT(res.leakage_rate_per_clifford, 0.0);
    EXPECT_LT(res.leakage_rate_per_clifford, 1e-3);
}

TEST(LeakageRb, FasterPulsesLeakMore) {
    // Default gates at half the duration drive the 1-2 transition harder.
    device::BackendConfig cfg = device::ibmq_montreal();
    device::PulseExecutor exec(cfg);
    device::DefaultGateOptions slow_opts;
    device::DefaultGateOptions fast_opts;
    fast_opts.gate_duration_dt = 64;  // ~14 ns pulses
    const auto slow_gates = device::build_default_gates(exec, slow_opts);
    const auto fast_gates = device::build_default_gates(exec, fast_opts);

    RbOptions opts;
    opts.lengths = {1, 100, 300, 600};
    opts.seeds_per_length = 4;
    const auto slow = run_leakage_rb_1q(exec, GateSet1Q(exec, slow_gates, 0, c1()), opts);
    const auto fast = run_leakage_rb_1q(exec, GateSet1Q(exec, fast_gates, 0, c1()), opts);
    EXPECT_GT(fast.leakage_population.back(), slow.leakage_population.back());
}

TEST(LeakageRb, TwoLevelDeviceHasNoLeakage) {
    device::BackendConfig cfg = device::ibmq_montreal();
    cfg.levels = 2;
    device::PulseExecutor exec(cfg);
    const auto defaults = device::build_default_gates(exec);
    GateSet1Q gates(exec, defaults, 0, c1());
    RbOptions opts;
    opts.lengths = {1, 100, 300};
    opts.seeds_per_length = 3;
    const auto res = run_leakage_rb_1q(exec, gates, opts);
    for (double leak : res.leakage_population) EXPECT_NEAR(leak, 0.0, 1e-12);
}

}  // namespace
}  // namespace qoc::rb
