/// Exhaustive / property tests of the Clifford machinery: full closure of
/// the 1Q group, decomposition pulse economics, 2Q coset statistics.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "linalg/kron.hpp"
#include "quantum/gates.hpp"
#include "rb/clifford1q.hpp"
#include "rb/clifford2q.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

const Clifford1Q& c1() {
    static Clifford1Q instance;
    return instance;
}

TEST(Clifford1QProperty, FullClosure) {
    // All 576 pairwise products land inside the group (checked by the table
    // construction, re-verified here against matrices).
    for (std::size_t i = 0; i < 24; ++i) {
        for (std::size_t j = 0; j < 24; ++j) {
            const std::size_t k = c1().multiply(i, j);
            ASSERT_LT(k, 24u);
            ASSERT_TRUE(linalg::equal_up_to_phase(c1().unitary(i) * c1().unitary(j),
                                                  c1().unitary(k), 1e-9))
                << i << " * " << j;
        }
    }
}

TEST(Clifford1QProperty, Associativity) {
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<std::size_t> dist(0, 23);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t a = dist(rng), b = dist(rng), c = dist(rng);
        EXPECT_EQ(c1().multiply(a, c1().multiply(b, c)),
                  c1().multiply(c1().multiply(a, b), c));
    }
}

TEST(Clifford1QProperty, ConjugationPermutesPaulis) {
    // Every Clifford maps {+-X, +-Y, +-Z} onto itself under conjugation.
    const std::vector<Mat> paulis = {g::x(), g::y(), g::z()};
    for (std::size_t i = 0; i < 24; ++i) {
        const Mat& u = c1().unitary(i);
        for (const Mat& p : paulis) {
            const Mat conj = u * p * u.adjoint();
            bool found = false;
            for (const Mat& q : paulis) {
                if (conj.approx_equal(q, 1e-9) || conj.approx_equal(-1.0 * q, 1e-9)) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found) << "Clifford " << i;
        }
    }
}

TEST(Clifford1QProperty, PulseCountDistribution) {
    // Average physical-pulse count per Clifford determines the RB Clifford
    // duration; with {rz, sx, x} it is well below 2.
    std::size_t total = 0;
    std::map<std::size_t, int> histo;
    for (std::size_t i = 0; i < 24; ++i) {
        total += c1().pulse_count(i);
        histo[c1().pulse_count(i)]++;
    }
    EXPECT_LT(static_cast<double>(total) / 24.0, 2.0);
    EXPECT_GE(histo[0], 1);  // identity-like (virtual-only) elements exist
}

TEST(Clifford1QProperty, OrderOfEveryElementDivides24) {
    for (std::size_t i = 0; i < 24; ++i) {
        std::size_t acc = i;
        std::size_t order = 1;
        while (acc != c1().identity_index() && order <= 24) {
            acc = c1().multiply(i, acc);
            ++order;
        }
        EXPECT_LE(order, 6u);  // 1Q Clifford element orders are 1,2,3,4,6
        EXPECT_EQ(24 % order, 0u);
    }
}

TEST(Clifford2QProperty, CosetRepresentativesNotLocallyEquivalent) {
    // CX, CX.CXr and SWAP classes are distinct even up to single-qubit
    // multiplication -- spot-check via the group index structure.
    static Clifford2Q c2(c1());
    std::mt19937_64 rng(9);
    // Products of two class-1 elements can land in any class; closure check.
    for (int trial = 0; trial < 20; ++trial) {
        std::uniform_int_distribution<std::size_t> dist(576, 576 + 5183);
        const Mat prod = c2.unitary(dist(rng)) * c2.unitary(dist(rng));
        EXPECT_NO_THROW(c2.find(prod));
    }
}

TEST(Clifford2QProperty, DecompositionCxBudget) {
    static Clifford2Q c2(c1());
    std::mt19937_64 rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t i = c2.sample(rng);
        std::size_t cx_in_decomp = 0;
        for (const auto& gate : c2.decomposition(i)) cx_in_decomp += (gate.name == "cx");
        // SWAP class uses 3 entanglers expressed via cx(0,1)+h-conjugations:
        // cx(1,0) costs one native cx, so the native-cx budget matches
        // cx_count exactly.
        EXPECT_EQ(cx_in_decomp, c2.cx_count(i)) << "element " << i;
    }
}

TEST(Clifford2QProperty, InverseRoundTrip) {
    static Clifford2Q c2(c1());
    std::mt19937_64 rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t i = c2.sample(rng);
        const std::size_t inv = c2.inverse(i);
        EXPECT_EQ(c2.inverse(inv), i);
    }
}

}  // namespace
}  // namespace qoc::rb
