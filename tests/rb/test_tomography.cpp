#include "rb/tomography.hpp"

#include <gtest/gtest.h>

#include "device/calibration.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

class TomographyTest : public ::testing::Test {
protected:
    static device::PulseExecutor& exec() {
        static device::PulseExecutor instance{device::ibmq_montreal()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
        return map;
    }
};

TEST(PtmMath, IdentityPtmIsIdentity) {
    EXPECT_TRUE(ptm_of_unitary(Mat::identity(2)).approx_equal(Mat::identity(4), 1e-12));
}

TEST(PtmMath, XGatePtm) {
    const Mat r = ptm_of_unitary(g::x());
    // X: I->I, X->X, Y->-Y, Z->-Z.
    EXPECT_NEAR(r(0, 0).real(), 1.0, 1e-12);
    EXPECT_NEAR(r(1, 1).real(), 1.0, 1e-12);
    EXPECT_NEAR(r(2, 2).real(), -1.0, 1e-12);
    EXPECT_NEAR(r(3, 3).real(), -1.0, 1e-12);
    EXPECT_NEAR(r(0, 1).real(), 0.0, 1e-12);
}

TEST(PtmMath, PtmIsReal) {
    const Mat r = ptm_of_unitary(g::t());
    for (const auto& v : r.data()) EXPECT_NEAR(v.imag(), 0.0, 1e-12);
}

TEST(PtmMath, FidelityFromPtmMatchesUnitaryFormula) {
    for (const Mat& u : {g::x(), g::h(), g::sx(), g::rx(0.3)}) {
        const double via_ptm = avg_fidelity_from_ptm(ptm_of_unitary(u), g::x());
        const double direct = quantum::average_gate_fidelity(g::x(), u);
        EXPECT_NEAR(via_ptm, direct, 1e-10);
    }
}

TEST(Mitigation, InvertsConfusionExactly) {
    device::BackendConfig cfg = device::ibmq_montreal();
    cfg.qubits[0].readout_p10 = 0.03;
    cfg.qubits[0].readout_p01 = 0.07;
    device::PulseExecutor dev(cfg);
    // true p1 = 0.6 -> measured = 0.6*(1-0.07) + 0.4*0.03 = 0.570
    const double measured = 0.6 * 0.93 + 0.4 * 0.03;
    EXPECT_NEAR(mitigate_p1(dev, 0, measured), 0.6, 1e-12);
    // Clamping.
    EXPECT_DOUBLE_EQ(mitigate_p1(dev, 0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(mitigate_p1(dev, 0, 1.0), 1.0);
}

TEST_F(TomographyTest, IdentityChannelNearPerfect) {
    const std::size_t d2 = exec().config().levels * exec().config().levels;
    const Mat ident = Mat::identity(d2);
    const auto res = process_tomography_1q(exec(), defaults(), ident, Mat::identity(2), 0,
                                           {.shots = 1 << 15});
    // SPAM (imperfect prep/basis gates) costs a little; mitigation removes
    // the readout part.
    EXPECT_GT(res.avg_gate_fidelity, 0.99);
    EXPECT_GT(res.unitarity, 0.97);
}

TEST_F(TomographyTest, DefaultXNearIdealX) {
    const Mat x_super = exec().schedule_superop_1q(defaults().get("x", {0}), 0);
    const auto res =
        process_tomography_1q(exec(), defaults(), x_super, g::x(), 0, {.shots = 1 << 15});
    EXPECT_GT(res.avg_gate_fidelity, 0.99);
    // PTM diagonal signs of X survive reconstruction.
    EXPECT_GT(res.ptm(1, 1).real(), 0.9);
    EXPECT_LT(res.ptm(2, 2).real(), -0.9);
    EXPECT_LT(res.ptm(3, 3).real(), -0.9);
}

TEST_F(TomographyTest, DetectsDepolarizingStrength) {
    // Tomography of a strongly depolarized channel: unitarity collapses.
    const std::size_t levels = exec().config().levels;
    // Build a d-level superop acting as depolarizing on the qubit block.
    const double p = 0.5;
    Mat dep2 = quantum::depolarizing_superop(2, p);
    // Embed: act as dep on the qubit sector, identity elsewhere.
    const std::size_t d2 = levels * levels;
    Mat dep(d2, d2);
    auto idx = [levels](std::size_t i, std::size_t j) { return i + levels * j; };
    for (std::size_t i = 0; i < d2; ++i) dep(i, i) = 1.0;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            for (std::size_t k = 0; k < 2; ++k)
                for (std::size_t l = 0; l < 2; ++l)
                    dep(idx(i, j), idx(k, l)) = dep2(i + 2 * j, k + 2 * l);
    const auto res = process_tomography_1q(exec(), defaults(), dep, Mat::identity(2), 0,
                                           {.shots = 1 << 15});
    // Depolarizing(0.5): PTM diagonal ~0.5, unitarity ~0.25.
    EXPECT_NEAR(res.ptm(3, 3).real(), 0.5, 0.06);
    EXPECT_NEAR(res.unitarity, 0.25, 0.06);
}

TEST_F(TomographyTest, MitigationImprovesFidelityEstimate) {
    const Mat x_super = exec().schedule_superop_1q(defaults().get("x", {0}), 0);
    const auto with = process_tomography_1q(exec(), defaults(), x_super, g::x(), 0,
                                            {.shots = 1 << 15, .mitigate_readout = true});
    const auto without = process_tomography_1q(exec(), defaults(), x_super, g::x(), 0,
                                               {.shots = 1 << 15, .mitigate_readout = false});
    EXPECT_GT(with.avg_gate_fidelity, without.avg_gate_fidelity);
}

}  // namespace
}  // namespace qoc::rb
