/// Determinism contracts of the batched (structure-of-arrays) RB seed
/// engine introduced with the structured superoperator kernels:
///
///  1. Partition invariance: any `seed_block` width -- scalar per-seed
///     blocks, the auto thread-spread width, one huge block -- commits
///     bitwise-identical curves, because the simd kernel family accumulates
///     each output element in the same order on the batched, strided and
///     single-column paths.
///  2. Thread invariance: 1-vs-N task-pool sizes are bitwise identical even
///     though the auto block width depends on the pool size.
///  3. Dense-vs-structured: forcing the legacy dense path (the
///     `QOC_DENSE_SUPEROP` escape hatch) reproduces the batched curves to
///     1e-12 -- the two engines differ only in floating-point association.

#include "rb/rb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "device/calibration.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop_structured.hpp"
#include "rb/leakage_rb.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::rb {
namespace {

device::PulseExecutor& exec() {
    static device::PulseExecutor instance{device::ibmq_montreal()};
    return instance;
}

const pulse::InstructionScheduleMap& defaults() {
    static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
    return map;
}

const Clifford1Q& c1() {
    static Clifford1Q instance;
    return instance;
}

const GateSet1Q& gates1q() {
    static GateSet1Q instance{exec(), defaults(), 0, c1()};
    return instance;
}

RbOptions small_opts() {
    RbOptions opts;
    opts.lengths = {1, 20, 40};
    opts.seeds_per_length = 6;
    opts.shots = 1024;
    return opts;
}

void expect_bitwise(const RbCurve& a, const RbCurve& b, const char* what) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].mean_survival, b.points[i].mean_survival) << what << " i=" << i;
        EXPECT_EQ(a.points[i].sem, b.points[i].sem) << what << " i=" << i;
    }
    EXPECT_EQ(a.alpha, b.alpha) << what;
    EXPECT_EQ(a.epc, b.epc) << what;
}

TEST(RbBatchedDeterminism, SeedBlockWidthIsUnobservable1Q) {
    RbOptions opts = small_opts();
    opts.seed_block = 0;  // auto
    const RbCurve ref = run_rb_1q(exec(), gates1q(), 0, opts);
    for (std::size_t block : {1ul, 2ul, 3ul, 6ul, 32ul}) {
        opts.seed_block = block;
        expect_bitwise(ref, run_rb_1q(exec(), gates1q(), 0, opts), "seed_block");
    }
}

TEST(RbBatchedDeterminism, BatchedVsScalarSeedPropagation1Q) {
    // seed_block = 1 degenerates every block to the single-seed (scalar)
    // propagation; the wide block exercises the d^2 x B broadcast path.
    RbOptions scalar = small_opts();
    scalar.seed_block = 1;
    RbOptions wide = small_opts();
    wide.seed_block = wide.seeds_per_length;
    expect_bitwise(run_rb_1q(exec(), gates1q(), 0, scalar),
                   run_rb_1q(exec(), gates1q(), 0, wide), "scalar-vs-batched");
}

TEST(RbBatchedDeterminism, ThreadCountIsUnobservableDespiteAutoWidth) {
    // The auto block width DEPENDS on the pool size; bitwise equality across
    // pool sizes is exactly the partition-invariance corollary.
    const RbOptions opts = small_opts();
    auto run = [&] { return run_rb_1q(exec(), gates1q(), 0, opts); };
    RbCurve ref;
    {
        runtime::ScopedPoolSize scoped(1);
        ref = run();
    }
    for (std::size_t threads : {2ul, 4ul}) {
        runtime::ScopedPoolSize scoped(threads);
        expect_bitwise(ref, run(), "threads");
    }
}

TEST(RbBatchedDeterminism, DenseEscapeHatchAgreesToTolerance1Q) {
    const RbOptions opts = small_opts();
    const RbCurve batched = run_rb_1q(exec(), gates1q(), 0, opts);
    quantum::force_dense_superop(true);
    const RbCurve dense = run_rb_1q(exec(), gates1q(), 0, opts);
    quantum::clear_dense_superop_override();

    ASSERT_EQ(batched.points.size(), dense.points.size());
    for (std::size_t i = 0; i < batched.points.size(); ++i) {
        EXPECT_NEAR(batched.points[i].mean_survival, dense.points[i].mean_survival, 1e-12)
            << "i=" << i;
    }
    EXPECT_NEAR(batched.epc, dense.epc, 1e-9);
}

TEST(RbBatchedDeterminism, DenseEscapeHatchAgreesToToleranceLeakage) {
    RbOptions opts = small_opts();
    opts.lengths = {1, 15, 30};
    const LeakageRbResult batched = run_leakage_rb_1q(exec(), gates1q(), opts);
    quantum::force_dense_superop(true);
    const LeakageRbResult dense = run_leakage_rb_1q(exec(), gates1q(), opts);
    quantum::clear_dense_superop_override();

    ASSERT_EQ(batched.leakage_population.size(), dense.leakage_population.size());
    for (std::size_t i = 0; i < batched.leakage_population.size(); ++i) {
        EXPECT_NEAR(batched.leakage_population[i], dense.leakage_population[i], 1e-12)
            << "i=" << i;
    }
    EXPECT_NEAR(batched.lambda, dense.lambda, 1e-9);
}

TEST(RbBatchedDeterminism, LeakageSeedBlockWidthIsUnobservable) {
    RbOptions opts = small_opts();
    opts.lengths = {1, 15, 30};
    opts.seed_block = 0;
    const LeakageRbResult ref = run_leakage_rb_1q(exec(), gates1q(), opts);
    for (std::size_t block : {1ul, 4ul, 32ul}) {
        opts.seed_block = block;
        const LeakageRbResult other = run_leakage_rb_1q(exec(), gates1q(), opts);
        ASSERT_EQ(ref.leakage_population.size(), other.leakage_population.size());
        for (std::size_t i = 0; i < ref.leakage_population.size(); ++i) {
            EXPECT_EQ(ref.leakage_population[i], other.leakage_population[i]) << "i=" << i;
        }
        EXPECT_EQ(ref.lambda, other.lambda);
    }
}

TEST(RbBatchedDeterminism, InterleavedBatchAgreesWithDense1Q) {
    // IRB adds the broadcast interleave step (one apply_batch_into per
    // Clifford step for the whole block) on top of the mixed per-seed steps.
    const Mat x_super = exec().schedule_superop_1q(defaults().get("x", {0}), 0);
    const std::size_t x_index = c1().find(quantum::gates::x());
    RbOptions opts = small_opts();
    opts.lengths = {1, 16, 32};
    opts.seeds_per_length = 4;

    const IrbResult batched = run_irb_1q(exec(), gates1q(), 0, x_super, x_index, opts);
    quantum::force_dense_superop(true);
    const IrbResult dense = run_irb_1q(exec(), gates1q(), 0, x_super, x_index, opts);
    quantum::clear_dense_superop_override();

    for (std::size_t i = 0; i < batched.interleaved.points.size(); ++i) {
        EXPECT_NEAR(batched.interleaved.points[i].mean_survival,
                    dense.interleaved.points[i].mean_survival, 1e-12)
            << "i=" << i;
    }
    EXPECT_NEAR(batched.gate_error, dense.gate_error, 1e-9);
}

}  // namespace
}  // namespace qoc::rb
