/// The RB engines propagate vec(rho) by matvec instead of composing
/// superoperator products.  Two guarantees are pinned here:
///
///  1. Equivalence: survivals match the old composition order
///     (total = S_rec S_m ... S_1, then one apply) to ~1e-12 -- the two
///     orders differ only in floating-point association.
///  2. Determinism: results are bit-identical across task-pool sizes; every
///     seed owns a disjoint output slot, pooled workspaces never leak
///     state, and no reduction reorders sums (mirrors
///     test_grape_determinism.cpp).

#include "rb/rb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "device/calibration.hpp"
#include "quantum/gates.hpp"
#include "quantum/superop.hpp"
#include "rb/leakage_rb.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::rb {
namespace {

namespace g = quantum::gates;

const Clifford1Q& c1() {
    static Clifford1Q instance;
    return instance;
}

const Clifford2Q& c2() {
    static Clifford2Q instance{c1()};
    return instance;
}

device::PulseExecutor& exec() {
    static device::PulseExecutor instance{device::ibmq_montreal()};
    return instance;
}

const pulse::InstructionScheduleMap& defaults() {
    static pulse::InstructionScheduleMap map = device::build_default_gates(exec());
    return map;
}

/// Reference implementation of the pre-matvec 1Q engine: compose the whole
/// sequence into one superoperator, apply it once.  RNG consumption matches
/// the production loop draw-for-draw so sequences and shot sampling pair up.
double composed_survival_1q(const GateSet1Q& gates, std::size_t qubit, const RbOptions& opts,
                            std::size_t li, std::size_t s) {
    const Clifford1Q& group = gates.group();
    const std::size_t d2 = gates.dim() * gates.dim();
    std::mt19937_64 rng(opts.rng_seed + 7919 * (li * 1000 + s));
    std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);

    Mat total = Mat::identity(d2);
    std::size_t net = group.identity_index();
    for (std::size_t k = 0; k < opts.lengths[li]; ++k) {
        const std::size_t c = dist(rng);
        total = gates.clifford_superop(c) * total;
        net = group.multiply(c, net);
    }
    total = gates.clifford_superop(group.inverse(net)) * total;

    const Mat rho = quantum::apply_superop(total, exec().ground_state_1q());
    const double p0 = 1.0 - exec().p1_after_readout(rho, qubit);
    std::binomial_distribution<int> shots_dist(opts.shots, std::clamp(p0, 0.0, 1.0));
    return static_cast<double>(shots_dist(rng)) / static_cast<double>(opts.shots);
}

/// Reference implementation of the pre-matvec 2Q engine.
double composed_survival_2q(const GateSet2Q& gates, const RbOptions& opts, std::size_t li,
                            std::size_t s) {
    const Clifford2Q& group = gates.group();
    std::mt19937_64 rng(opts.rng_seed + 6271 * (li * 1000 + s));

    Mat total = Mat::identity(16);
    Mat net_ideal = Mat::identity(4);
    for (std::size_t k = 0; k < opts.lengths[li]; ++k) {
        const std::size_t c = group.sample(rng);
        total = gates.clifford_superop(c) * total;
        net_ideal = phase_normalize(group.unitary(c) * net_ideal);
    }
    total = gates.clifford_superop(group.find(net_ideal.adjoint())) * total;

    const Mat rho = quantum::apply_superop(total, exec().ground_state_2q());
    return exec().measure_2q(rho, opts.shots, rng()).probability("00");
}

TEST(RbMatvec, MatchesComposedSuperopProduct1Q) {
    GateSet1Q gates(exec(), defaults(), 0, c1());
    RbOptions opts;
    opts.lengths = {1, 8, 16, 32};
    opts.seeds_per_length = 4;
    opts.shots = 2048;
    const RbCurve curve = run_rb_1q(exec(), gates, 0, opts);

    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        double mean = 0.0;
        for (std::size_t s = 0; s < opts.seeds_per_length; ++s) {
            mean += composed_survival_1q(gates, 0, opts, li, s);
        }
        mean /= static_cast<double>(opts.seeds_per_length);
        EXPECT_NEAR(curve.points[li].mean_survival, mean, 1e-12) << "m=" << opts.lengths[li];
    }
}

TEST(RbMatvec, MatchesComposedSuperopProduct2Q) {
    GateSet2Q gates(exec(), defaults(), c2());
    RbOptions opts;
    opts.lengths = {1, 4, 8};
    opts.seeds_per_length = 3;
    opts.shots = 2048;
    const RbCurve curve = run_rb_2q(exec(), gates, opts);

    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        double mean = 0.0;
        for (std::size_t s = 0; s < opts.seeds_per_length; ++s) {
            mean += composed_survival_2q(gates, opts, li, s);
        }
        mean /= static_cast<double>(opts.seeds_per_length);
        EXPECT_NEAR(curve.points[li].mean_survival, mean, 1e-12) << "m=" << opts.lengths[li];
    }
}

/// Runs `fn` with a fixed task-pool size, restoring the previous one.
template <typename Fn>
auto with_threads(int n_threads, Fn&& fn) {
    runtime::ScopedPoolSize scoped(static_cast<std::size_t>(n_threads));
    return fn();
}

void expect_curves_bitwise_equal(const RbCurve& a, const RbCurve& b, int threads) {
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].mean_survival, b.points[i].mean_survival)
            << "threads=" << threads << " i=" << i;
        EXPECT_EQ(a.points[i].sem, b.points[i].sem) << "threads=" << threads << " i=" << i;
    }
    EXPECT_EQ(a.alpha, b.alpha) << "threads=" << threads;
    EXPECT_EQ(a.epc, b.epc) << "threads=" << threads;
}

TEST(RbDeterminism, Rb1qBitIdenticalAcrossThreadCounts) {
    GateSet1Q gates(exec(), defaults(), 0, c1());
    RbOptions opts;
    opts.lengths = {1, 30, 60};
    opts.seeds_per_length = 6;
    opts.shots = 1024;
    auto run = [&] { return run_rb_1q(exec(), gates, 0, opts); };
    const RbCurve ref = with_threads(1, run);
    for (int threads : {2, 4}) {
        expect_curves_bitwise_equal(ref, with_threads(threads, run), threads);
    }
}

TEST(RbDeterminism, Irb2qBitIdenticalAcrossThreadCounts) {
    GateSet2Q gates(exec(), defaults(), c2());
    const Mat cx_super = exec().schedule_superop_2q(defaults().get("cx", {0, 1}));
    const std::size_t cx_index = c2().find(g::cx());
    RbOptions opts;
    opts.lengths = {1, 4, 8};
    opts.seeds_per_length = 4;
    opts.shots = 1024;
    auto run = [&] { return run_irb_2q(exec(), gates, cx_super, cx_index, opts); };
    const IrbResult ref = with_threads(1, run);
    for (int threads : {2, 4}) {
        const IrbResult other = with_threads(threads, run);
        expect_curves_bitwise_equal(ref.reference, other.reference, threads);
        expect_curves_bitwise_equal(ref.interleaved, other.interleaved, threads);
        EXPECT_EQ(ref.gate_error, other.gate_error) << "threads=" << threads;
    }
}

TEST(RbDeterminism, LeakageRbBitIdenticalAcrossThreadCounts) {
    // Guards the removal of the OpenMP reduction (whose summation order
    // depended on the thread count) in favor of per-seed slots.
    GateSet1Q gates(exec(), defaults(), 0, c1());
    RbOptions opts;
    opts.lengths = {1, 25, 50};
    opts.seeds_per_length = 6;
    auto run = [&] { return run_leakage_rb_1q(exec(), gates, opts); };
    const LeakageRbResult ref = with_threads(1, run);
    for (int threads : {2, 4}) {
        const LeakageRbResult other = with_threads(threads, run);
        ASSERT_EQ(ref.leakage_population.size(), other.leakage_population.size());
        for (std::size_t i = 0; i < ref.leakage_population.size(); ++i) {
            EXPECT_EQ(ref.leakage_population[i], other.leakage_population[i])
                << "threads=" << threads << " i=" << i;
        }
        EXPECT_EQ(ref.lambda, other.lambda) << "threads=" << threads;
    }
}

}  // namespace
}  // namespace qoc::rb
