/// End-to-end integration tests across modules: design -> serialize ->
/// reload -> execute; circuit-vs-schedule equivalence on two qubits;
/// drift-day replay determinism.

#include <gtest/gtest.h>

#include <sstream>

#include "device/calibration.hpp"
#include "device/drift_model.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "io/io.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc {
namespace {

namespace g = quantum::gates;
using experiments::amps_to_schedule;

TEST(Pipeline, DesignSerializeReloadExecute) {
    // The drift-study workflow: design once, archive the amplitudes, reload
    // them later and rebuild the exact same schedule.
    const auto nominal = device::nominal_model(device::ibmq_montreal());
    experiments::GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 256;
    spec.n_timeslots = 32;
    spec.model = experiments::DesignModel::kThreeLevelClosed;
    const auto designed = experiments::design_1q_gate(nominal, 0, "x", spec);

    std::stringstream ss;
    io::write_amplitudes_csv(ss, designed.optim.final_amps);
    const auto reloaded = io::read_amplitudes_csv(ss);
    const auto rebuilt =
        amps_to_schedule(reloaded, 0, 1, 256, pulse::drive_channel(0), "x_reloaded");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto sup_orig = dev.schedule_superop_1q(designed.schedule, 0);
    const auto sup_rebuilt = dev.schedule_superop_1q(rebuilt, 0);
    EXPECT_TRUE(sup_orig.approx_equal(sup_rebuilt, 1e-12));
}

TEST(Pipeline, TwoQubitCircuitVsScheduleEquivalence) {
    // Gate-level composition and full-schedule sample integration must agree
    // for a circuit mixing 1q gates, virtual Z and CX.
    device::BackendConfig cfg = device::ibmq_montreal();
    for (auto& q : cfg.qubits) {
        q.drive_amp_noise = 0.0;  // keep both paths strictly comparable
    }
    device::PulseExecutor dev(cfg);
    const auto defaults = device::build_default_gates(dev);

    pulse::QuantumCircuit qc(2);
    qc.sx(0).rz(0, 0.7).x(1).cx(0, 1).rz(1, -0.4).sx(1);
    const auto via_gates = device::simulate_circuit_2q(dev, qc, defaults);

    pulse::FrameConfig frames;
    frames.extra_channels[1] = {pulse::control_channel(0)};
    const auto sched = pulse::circuit_to_schedule(qc, defaults, 0, frames);
    const auto sup = dev.schedule_superop_2q(sched);
    const auto via_schedule = quantum::apply_superop(sup, dev.ground_state_2q());

    // The two paths are NOT identical by construction: gate-level
    // composition fully serializes, while the schedule path overlaps
    // independent channels (e.g. the trailing sx on qubit 1 plays during
    // the CX echo's final control-qubit pulse), so ZZ-during-overlap and
    // idle-time placement differ at the few-1e-3 level.  They must agree to
    // that physical precision, not to machine precision.
    EXPECT_TRUE(via_gates.approx_equal(via_schedule, 2e-2));
    // And both must be valid states close to each other in fidelity terms.
    EXPECT_TRUE(quantum::is_density_matrix(via_schedule, 1e-7));
}

TEST(Pipeline, DriftDayReplayIsDeterministic) {
    const device::DriftModel drift(device::ibmq_montreal(), 77);
    const auto day3a = drift.device_on_day(3);
    const auto day3b = drift.device_on_day(3);
    device::PulseExecutor da(day3a), db(day3b);
    const auto defaults_a = device::build_default_gates(da);
    const auto defaults_b = device::build_default_gates(db);
    const auto sup_a = da.schedule_superop_1q(defaults_a.get("x", {0}), 0);
    const auto sup_b = db.schedule_superop_1q(defaults_b.get("x", {0}), 0);
    EXPECT_TRUE(sup_a.approx_equal(sup_b, 0.0));
}

TEST(Pipeline, HistogramMatchesSuperopPopulations) {
    // run_circuit_1q's histogram must agree with the analytic readout
    // probability to shot-noise precision.
    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    pulse::QuantumCircuit qc(1);
    qc.x(0);
    const auto rho = device::simulate_circuit_1q(dev, qc, defaults, 0);
    const double p1 = dev.p1_after_readout(rho, 0);
    const auto counts = device::run_circuit_1q(dev, qc, defaults, 0, 1 << 16, 9);
    EXPECT_NEAR(counts.probability("1"), p1, 5e-3);
}

TEST(Pipeline, CustomCalibrationChangesIrbOutcome) {
    // Plumbing check on a small budget: a deliberately bad custom X must
    // show a much larger IRB error than the default.
    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    rb::Clifford1Q group;

    // "Bad" custom: the default X with 10% amplitude error.
    const auto rabi = device::rabi_calibrate(dev, 0);
    const auto wf = pulse::drag_waveform(160, {1.10 * rabi.pi_amplitude, 0.0},
                                         device::default_drag_beta(dev.config(), 0, 160));
    pulse::Schedule bad("bad_x");
    bad.insert(0, pulse::Play{wf, pulse::drive_channel(0)});

    rb::RbOptions opts;
    opts.lengths = {1, 100, 300, 700};
    opts.seeds_per_length = 4;
    const auto cmp = experiments::compare_1q_gate(dev, defaults, "x", 0, bad, group, opts);
    EXPECT_GT(cmp.custom.gate_error, 3.0 * cmp.standard.gate_error);
}

}  // namespace
}  // namespace qoc
