#include "dynamics/propagator.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "linalg/expm.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"

namespace qoc::dynamics {
namespace {

using linalg::cplx;
using quantum::sigma_minus;
using quantum::sigma_x;
using quantum::sigma_y;
using quantum::sigma_z;
constexpr cplx kI{0.0, 1.0};

TEST(PwcSystem, GeneratorAssembly) {
    PwcSystem sys{0.5 * sigma_z(), {sigma_x(), sigma_y()}};
    const Mat g = sys.generator({0.3, -0.7});
    EXPECT_TRUE(g.approx_equal(0.5 * sigma_z() + 0.3 * sigma_x() - 0.7 * sigma_y(), 1e-14));
    EXPECT_THROW(sys.generator({0.3}), std::invalid_argument);
}

TEST(PwcUnitary, ConstantPulseImplementsRotation) {
    // Drive sigma_x/2 at amplitude Omega for time t: RX(Omega * t).
    PwcSystem sys{Mat(2, 2), {0.5 * sigma_x()}};
    const double omega = 0.8, dt = 0.1;
    const std::size_t n = 20;
    ControlAmplitudes amps(n, {omega});
    const auto props = pwc_unitary_propagators(sys, amps, dt);
    const Mat total = chain_product(props);
    const Mat expect = quantum::gates::rx(omega * dt * static_cast<double>(n));
    EXPECT_TRUE(total.approx_equal(expect, 1e-11));
}

TEST(PwcUnitary, PiPulseMakesX) {
    PwcSystem sys{Mat(2, 2), {0.5 * sigma_x()}};
    const std::size_t n = 16;
    const double total_t = 1.0;
    ControlAmplitudes amps(n, {std::numbers::pi / total_t});
    const auto props = pwc_unitary_propagators(sys, amps, total_t / n);
    EXPECT_TRUE(linalg::equal_up_to_phase(chain_product(props), quantum::gates::x(), 1e-10));
}

TEST(PwcUnitary, PropagatorsAreUnitary) {
    PwcSystem sys{0.2 * sigma_z(), {sigma_x(), sigma_y()}};
    ControlAmplitudes amps{{0.5, 0.1}, {-0.4, 0.9}, {0.0, 0.0}};
    for (const Mat& p : pwc_unitary_propagators(sys, amps, 0.37)) {
        EXPECT_TRUE(p.is_unitary(1e-12));
    }
}

TEST(PwcSuperop, TracePreservingChain) {
    const Mat l0 = quantum::liouvillian(0.4 * sigma_z(), {std::sqrt(0.03) * sigma_minus()});
    const Mat lx = quantum::liouvillian_hamiltonian(sigma_x());
    PwcSystem sys{l0, {lx}};
    ControlAmplitudes amps{{0.7}, {0.1}, {-0.3}};
    const auto props = pwc_superop_propagators(sys, amps, 0.5);
    const Mat total = chain_product(props);
    EXPECT_TRUE(quantum::is_trace_preserving(total, 1e-9));
}

TEST(PwcSuperop, ReducesToUnitaryWithoutDissipation) {
    // Without collapse operators the superop chain equals the unitary
    // conjugation superoperator of the unitary chain.
    PwcSystem usys{0.3 * sigma_z(), {sigma_x()}};
    ControlAmplitudes amps{{0.9}, {-0.2}, {0.5}, {0.0}};
    const double dt = 0.21;
    const Mat u = chain_product(pwc_unitary_propagators(usys, amps, dt));

    PwcSystem lsys{quantum::liouvillian_hamiltonian(usys.drift),
                   {quantum::liouvillian_hamiltonian(usys.ctrls[0])}};
    const Mat s = chain_product(pwc_superop_propagators(lsys, amps, dt));
    EXPECT_TRUE(s.approx_equal(quantum::unitary_superop(u), 1e-10));
}

TEST(Products, ForwardBackwardConsistency) {
    PwcSystem sys{0.2 * sigma_z(), {sigma_x()}};
    ControlAmplitudes amps{{0.3}, {0.6}, {-0.1}, {0.8}, {0.2}};
    const auto props = pwc_unitary_propagators(sys, amps, 0.4);
    const auto fwd = forward_products(props);
    const auto bwd = backward_products(props);
    const Mat total = chain_product(props);

    EXPECT_TRUE(fwd.back().approx_equal(total, 1e-12));
    EXPECT_TRUE(bwd.back().approx_equal(Mat::identity(2), 1e-14));
    // total = bwd[k] * P_{k+1} * fwd[k-1] for every k.
    for (std::size_t k = 0; k < props.size(); ++k) {
        Mat rebuilt = bwd[k] * props[k];
        if (k > 0) rebuilt = rebuilt * fwd[k - 1];
        EXPECT_TRUE(rebuilt.approx_equal(total, 1e-11)) << "k=" << k;
    }
}

TEST(Products, EmptyChainThrows) {
    EXPECT_THROW(chain_product({}), std::invalid_argument);
}

TEST(PwcUnitary, AmplitudeCountValidated) {
    PwcSystem sys{Mat(2, 2), {sigma_x(), sigma_y()}};
    ControlAmplitudes bad{{0.1}};
    EXPECT_THROW(pwc_unitary_propagators(sys, bad, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::dynamics
