#include "dynamics/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dynamics/propagator.hpp"
#include "linalg/expm.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"

namespace qoc::dynamics {
namespace {

using linalg::cplx;
using quantum::basis_ket;
using quantum::ket_to_dm;
using quantum::sigma_minus;
using quantum::sigma_x;
using quantum::sigma_z;
constexpr cplx kI{0.0, 1.0};

TEST(Rk45, ScalarExponentialDecay) {
    // dx/dt = -x, x(0) = 1 -> x(t) = e^{-t}.
    MatrixRhs rhs = [](double, const Mat& x) { return -1.0 * x; };
    Mat x0(1, 1);
    x0(0, 0) = 1.0;
    const auto res = integrate_rk45(rhs, x0, 0.0, 3.0);
    EXPECT_NEAR(res.state(0, 0).real(), std::exp(-3.0), 1e-8);
}

TEST(Rk45, SchrodingerRabiOscillation) {
    // i dpsi/dt = H psi with H = (Omega/2) sx: P1(t) = sin^2(Omega t / 2).
    const double omega = 2.0 * std::numbers::pi * 0.05;
    const Mat h = 0.5 * omega * sigma_x();
    MatrixRhs rhs = [&](double, const Mat& psi) { return (-kI) * (h * psi); };
    const double t_pi = std::numbers::pi / omega;  // pi pulse time
    const auto res = integrate_rk45(rhs, basis_ket(2, 0), 0.0, t_pi);
    EXPECT_NEAR(std::norm(res.state(1, 0)), 1.0, 1e-8);
    const auto res_half = integrate_rk45(rhs, basis_ket(2, 0), 0.0, t_pi / 2.0);
    EXPECT_NEAR(std::norm(res_half.state(1, 0)), 0.5, 1e-8);
}

TEST(Rk45, MatchesExpmForConstantGenerator) {
    const Mat h = 0.7 * sigma_x() + 0.3 * sigma_z();
    MatrixRhs rhs = [&](double, const Mat& psi) { return (-kI) * (h * psi); };
    const double t = 2.3;
    const auto res = integrate_rk45(rhs, basis_ket(2, 0), 0.0, t);
    const Mat expect = linalg::expm_hermitian(h, t) * basis_ket(2, 0);
    EXPECT_TRUE(res.state.approx_equal(expect, 1e-8));
}

TEST(Rk45, MasterEquationT1Decay) {
    const double gamma = 0.2;
    auto h = [](double) { return Mat(2, 2); };
    const Mat rho1 = ket_to_dm(basis_ket(2, 1));
    const Mat out = evolve_master_equation(h, {std::sqrt(gamma) * sigma_minus()}, rho1, 0.0, 4.0);
    EXPECT_NEAR(out(1, 1).real(), std::exp(-gamma * 4.0), 1e-8);
    EXPECT_NEAR(out.trace().real(), 1.0, 1e-10);
}

TEST(Rk45, TimeDependentHamiltonianMatchesPwc) {
    // A pulse that is genuinely PWC: RK45 over the same piecewise Hamiltonian
    // must match the expm-chain propagator applied to the state.
    const std::vector<double> amps{0.8, -0.3, 0.5, 0.1};
    const double dt = 0.7;
    auto h = [&](double t) {
        auto k = std::min<std::size_t>(static_cast<std::size_t>(t / dt), amps.size() - 1);
        return amps[k] * 0.5 * sigma_x();
    };
    const Mat rho0 = ket_to_dm(basis_ket(2, 0));
    const Mat via_rk =
        evolve_master_equation(h, {}, rho0, 0.0, dt * static_cast<double>(amps.size()));

    PwcSystem sys{Mat(2, 2), {0.5 * sigma_x()}};
    ControlAmplitudes slot_amps;
    for (double a : amps) slot_amps.push_back({a});
    const Mat u = chain_product(pwc_unitary_propagators(sys, slot_amps, dt));
    const Mat via_pwc = u * rho0 * u.adjoint();
    EXPECT_TRUE(via_rk.approx_equal(via_pwc, 1e-7));
}

TEST(Rk45, BackwardIntegration) {
    MatrixRhs rhs = [](double, const Mat& x) { return -1.0 * x; };
    Mat x0(1, 1);
    x0(0, 0) = 1.0;
    const auto fwdr = integrate_rk45(rhs, x0, 0.0, 2.0);
    const auto back = integrate_rk45(rhs, fwdr.state, 2.0, 0.0);
    EXPECT_NEAR(back.state(0, 0).real(), 1.0, 1e-7);
}

TEST(Rk45, ZeroIntervalIsIdentity) {
    MatrixRhs rhs = [](double, const Mat& x) { return x; };
    Mat x0(2, 1);
    x0(0, 0) = 0.3;
    const auto res = integrate_rk45(rhs, x0, 1.0, 1.0);
    EXPECT_TRUE(res.state.approx_equal(x0));
    EXPECT_EQ(res.steps_taken, 0u);
}

TEST(Rk45, StepBudgetEnforced) {
    MatrixRhs rhs = [](double, const Mat& x) { return 1000.0 * x; };
    Mat x0(1, 1);
    x0(0, 0) = 1.0;
    IntegratorOptions opts;
    opts.max_steps = 5;
    EXPECT_THROW(integrate_rk45(rhs, x0, 0.0, 100.0, opts), std::runtime_error);
}

}  // namespace
}  // namespace qoc::dynamics
