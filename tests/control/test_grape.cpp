#include "control/grape.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "control/pulse_shapes.hpp"
#include "optim/gradient_check.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"

namespace qoc::control {
namespace {

using quantum::annihilation;
using quantum::drive_x;
using quantum::drive_y;
using quantum::duffing_drift;
using quantum::qubit_isometry;
using quantum::sigma_minus;
using quantum::sigma_x;
using quantum::sigma_y;
using quantum::sigma_z;

GrapeProblem x_gate_problem(std::size_t n_ts = 12) {
    GrapeProblem p;
    p.system.drift = Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = quantum::gates::x();
    p.n_timeslots = n_ts;
    p.evo_time = 4.0;
    p.fidelity = FidelityType::kPsu;
    p.initial_amps.assign(n_ts, {0.4, 0.1});
    return p;
}

/// Wraps a GRAPE problem as an optim::Objective for the FD gradient checker.
optim::Objective as_objective(const GrapeProblem& prob) {
    return [prob](const std::vector<double>& x, std::vector<double>& g) {
        // Rebuild via the public API: pack x into amps, use a 1-iteration
        // gradient-descent call? Instead evaluate via grape internals by a
        // single L-BFGS-B callback is awkward -- so use evaluate_fid_err for
        // f and finite differences handled by the checker; analytic gradient
        // from a zero-step gradient descent is not exposed.  We therefore
        // test gradients indirectly below via optimizer convergence AND
        // directly here through a one-step descent probe.
        (void)g;
        GrapeProblem p = prob;
        ControlAmplitudes amps(p.n_timeslots, std::vector<double>(p.system.ctrls.size()));
        for (std::size_t k = 0; k < p.n_timeslots; ++k)
            for (std::size_t j = 0; j < p.system.ctrls.size(); ++j)
                amps[k][j] = x[k * p.system.ctrls.size() + j];
        return evaluate_fid_err(p, amps);
    };
}

TEST(GrapeClosed, OptimizesXGateToHighFidelity) {
    const auto res = grape_unitary(x_gate_problem(), {.max_iterations = 200});
    EXPECT_LT(res.final_fid_err, 1e-8);
    EXPECT_LT(res.final_fid_err, res.initial_fid_err);
    EXPECT_NEAR(quantum::fidelity_psu(quantum::gates::x(), res.final_evolution), 1.0, 1e-7);
}

TEST(GrapeClosed, OptimizesHadamard) {
    GrapeProblem p = x_gate_problem(16);
    p.target = quantum::gates::h();
    const auto res = grape_unitary(p, {.max_iterations = 300});
    EXPECT_LT(res.final_fid_err, 1e-8);
}

TEST(GrapeClosed, OptimizesSxGateSingleControl) {
    GrapeProblem p;
    p.system.drift = Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x()};
    p.target = quantum::gates::sx();
    p.n_timeslots = 10;
    p.evo_time = 3.0;
    p.initial_amps.assign(10, {0.3});
    const auto res = grape_unitary(p, {.max_iterations = 200});
    EXPECT_LT(res.final_fid_err, 1e-9);
}

TEST(GrapeClosed, RespectsAmplitudeBounds) {
    GrapeProblem p = x_gate_problem();
    // Tight bounds also require a longer pulse: the max rotation angle is
    // |u|_max * evo_time and must exceed pi.
    p.evo_time = 10.0;
    p.amp_lower = -0.5;
    p.amp_upper = 0.5;
    const auto res = grape_unitary(p, {.max_iterations = 200});
    for (const auto& slot : res.final_amps) {
        for (double a : slot) {
            EXPECT_GE(a, -0.5 - 1e-12);
            EXPECT_LE(a, 0.5 + 1e-12);
        }
    }
    EXPECT_LT(res.final_fid_err, 1e-7);
}

TEST(GrapeClosed, GradientMatchesFiniteDifference) {
    // The analytic gradient is exercised inside L-BFGS-B; validate it by a
    // finite-difference probe on a descent direction: one gradient step from
    // the seed must reduce the error for a small learning rate.
    GrapeProblem p = x_gate_problem(8);
    const auto gd = grape_gradient_descent(p, 0.05, 2);
    ASSERT_GE(gd.fid_err_history.size(), 2u);
    EXPECT_LT(gd.fid_err_history[1], gd.fid_err_history[0]);
}

TEST(GrapeClosed, GradientAgainstNumericDerivative) {
    // Full FD check of the objective used by the optimizer: compare the
    // decrease predicted by the analytic gradient (via one GD step) with the
    // FD directional derivative of evaluate_fid_err.
    GrapeProblem p = x_gate_problem(6);
    const std::size_t n = p.n_timeslots * p.system.ctrls.size();
    std::vector<double> x0(n);
    for (std::size_t k = 0; k < p.n_timeslots; ++k) {
        x0[2 * k] = 0.4;
        x0[2 * k + 1] = 0.1;
    }
    // Analytic gradient extracted from a single tiny GD step:
    // u1 = u0 - lr * g  =>  g = (u0 - u1) / lr (no clipping active here).
    const double lr = 1e-7;
    const auto gd = grape_gradient_descent(p, lr, 1);
    std::vector<double> analytic(n);
    for (std::size_t k = 0; k < p.n_timeslots; ++k)
        for (std::size_t j = 0; j < 2; ++j)
            analytic[2 * k + j] = (x0[2 * k + j] - gd.final_amps[k][j]) / lr;

    auto obj = as_objective(p);
    std::vector<double> dummy;
    const double h = 1e-6;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> xp = x0, xm = x0;
        xp[i] += h;
        xm[i] -= h;
        const double fd = (obj(xp, dummy) - obj(xm, dummy)) / (2.0 * h);
        EXPECT_NEAR(analytic[i], fd, 1e-5) << "param " << i;
    }
}

TEST(GrapeClosed, SubspaceFidelityThreeLevelX) {
    // 3-level Duffing transmon, X on the qubit subspace.
    const std::size_t d = 3;
    GrapeProblem p;
    p.system.drift = duffing_drift(d, 0.0, -2.0 * std::numbers::pi * 0.33);
    p.system.ctrls = {0.5 * drive_x(d), 0.5 * drive_y(d)};
    p.target = quantum::gates::x();
    p.subspace_isometry = qubit_isometry(d);
    p.n_timeslots = 20;
    p.evo_time = 12.0;
    p.initial_amps.assign(20, {0.25, 0.0});
    const auto res = grape_unitary(p, {.max_iterations = 500});
    EXPECT_LT(res.final_fid_err, 1e-6);
    EXPECT_NEAR(quantum::fidelity_psu_subspace(quantum::gates::x(), res.final_evolution,
                                               qubit_isometry(d)),
                1.0, 1e-5);
}

TEST(GrapeOpen, LindbladXGate) {
    // Open-system GRAPE with weak T1: should still find a high-quality X.
    const double gamma = 1e-4;
    GrapeProblem p;
    p.system.drift = quantum::liouvillian(Mat(2, 2), {std::sqrt(gamma) * sigma_minus()});
    p.system.ctrls = {quantum::liouvillian_hamiltonian(0.5 * sigma_x()),
                      quantum::liouvillian_hamiltonian(0.5 * sigma_y())};
    p.target = quantum::unitary_superop(quantum::gates::x());
    p.fidelity = FidelityType::kTraceDiff;
    p.n_timeslots = 12;
    p.evo_time = 4.0;
    p.initial_amps.assign(12, {0.4, 0.1});
    const auto res = grape_lindblad(p, {.max_iterations = 300});
    EXPECT_LT(res.final_fid_err, 1e-3);
    EXPECT_LT(res.final_fid_err, res.initial_fid_err / 10.0);
}

TEST(GrapeOpen, GradientDescentProbeDecreases) {
    const double gamma = 1e-3;
    GrapeProblem p;
    p.system.drift = quantum::liouvillian(0.1 * sigma_z(), {std::sqrt(gamma) * sigma_minus()});
    p.system.ctrls = {quantum::liouvillian_hamiltonian(0.5 * sigma_x())};
    p.target = quantum::unitary_superop(quantum::gates::sx());
    p.fidelity = FidelityType::kTraceDiff;
    p.n_timeslots = 8;
    p.evo_time = 3.0;
    p.initial_amps.assign(8, {0.3});
    const auto gd = grape_gradient_descent(p, 0.2, 5);
    EXPECT_LT(gd.fid_err_history.back(), gd.fid_err_history.front());
}

TEST(GrapeValidation, RejectsBadSpecs) {
    GrapeProblem p = x_gate_problem();
    p.n_timeslots = 0;
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);

    p = x_gate_problem();
    p.evo_time = -1.0;
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);

    p = x_gate_problem();
    p.initial_amps.pop_back();
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);

    p = x_gate_problem();
    p.fidelity = FidelityType::kTraceDiff;
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);

    p = x_gate_problem();
    EXPECT_THROW(grape_lindblad(p), std::invalid_argument);
}

TEST(GrapeClosed, SuFidelityAlsoConverges) {
    // SU is phase sensitive, and traceless controls only reach SU(2)
    // (det = +1), so the target must be the SU(2) representative of X:
    // RX(pi) = -iX.  GRAPE must then match it *including* the phase.
    GrapeProblem p = x_gate_problem();
    p.target = quantum::gates::rx(std::numbers::pi);
    p.fidelity = FidelityType::kSu;
    const auto res = grape_unitary(p, {.max_iterations = 300});
    EXPECT_LT(res.final_fid_err, 1e-7);
    EXPECT_TRUE(res.final_evolution.approx_equal(quantum::gates::rx(std::numbers::pi), 1e-3));
}

TEST(GrapeClosed, HistoryMonotoneForLbfgsb) {
    const auto res = grape_unitary(x_gate_problem(), {.max_iterations = 100});
    for (std::size_t i = 1; i < res.fid_err_history.size(); ++i) {
        EXPECT_LE(res.fid_err_history[i], res.fid_err_history[i - 1] + 1e-12);
    }
}

/// Sweep over timeslot counts: more slots should never make the achievable
/// error dramatically worse (property of the parameterization).
class GrapeTimeslotSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrapeTimeslotSweep, ConvergesForVariousResolutions) {
    const std::size_t n_ts = GetParam();
    GrapeProblem p = x_gate_problem(n_ts);
    p.initial_amps.assign(n_ts, {0.4, 0.1});
    const auto res = grape_unitary(p, {.max_iterations = 300});
    EXPECT_LT(res.final_fid_err, 1e-6) << "n_ts=" << n_ts;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GrapeTimeslotSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

}  // namespace
}  // namespace qoc::control
