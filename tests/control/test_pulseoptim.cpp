#include "control/pulseoptim.hpp"

#include <gtest/gtest.h>

#include "control/crab.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"

namespace qoc::control {
namespace {

using quantum::sigma_minus;
using quantum::sigma_x;
using quantum::sigma_y;

PulseOptimSpec x_spec() {
    PulseOptimSpec s;
    s.h_drift = Mat(2, 2);
    s.h_ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    s.u_target = quantum::gates::x();
    s.n_timeslots = 16;
    s.evo_time = 5.0;
    s.initial_pulse = InitialPulseType::kDrag;
    s.initial_scale = 0.5;
    return s;
}

TEST(PulseOptim, ClosedSystemXGate) {
    const auto res = pulse_optim(x_spec());
    EXPECT_FALSE(res.open_system);
    EXPECT_LT(res.final_fid_err, 1e-8);
    EXPECT_EQ(res.final_amps.size(), 16u);
    EXPECT_NEAR(res.dt, 5.0 / 16.0, 1e-14);
}

TEST(PulseOptim, OpenSystemWithCollapseOps) {
    PulseOptimSpec s = x_spec();
    s.collapse_ops = {std::sqrt(1e-4) * sigma_minus()};
    const auto res = pulse_optim(s);
    EXPECT_TRUE(res.open_system);
    EXPECT_LT(res.final_fid_err, 1e-3);
    // Final evolution is a superoperator (4x4 for a qubit).
    EXPECT_EQ(res.final_evolution.rows(), 4u);
}

TEST(PulseOptim, SeedPulseTypes) {
    for (auto type : {InitialPulseType::kDrag, InitialPulseType::kGaussian,
                      InitialPulseType::kGaussianSquare, InitialPulseType::kSine,
                      InitialPulseType::kSquare, InitialPulseType::kRandom,
                      InitialPulseType::kZero}) {
        PulseOptimSpec s = x_spec();
        s.initial_pulse = type;
        const auto amps = build_initial_amps(s);
        EXPECT_EQ(amps.size(), s.n_timeslots);
        EXPECT_EQ(amps[0].size(), 2u);
        for (const auto& slot : amps) {
            for (double a : slot) {
                EXPECT_GE(a, s.amp_lower);
                EXPECT_LE(a, s.amp_upper);
            }
        }
    }
}

TEST(PulseOptim, DragSeedPairsIq) {
    PulseOptimSpec s = x_spec();
    s.initial_pulse = InitialPulseType::kDrag;
    const auto amps = build_initial_amps(s);
    // I (ctrl 0) is symmetric and positive, Q (ctrl 1) antisymmetric.
    const std::size_t n = amps.size();
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(amps[k][0], amps[n - 1 - k][0], 1e-12);
        EXPECT_NEAR(amps[k][1], -amps[n - 1 - k][1], 1e-12);
        EXPECT_GE(amps[k][0], 0.0);
    }
}

TEST(PulseOptim, ZeroSeedStillConverges) {
    PulseOptimSpec s = x_spec();
    s.initial_pulse = InitialPulseType::kRandom;  // zero seed is a stationary
                                                  // point for some targets;
                                                  // random always works
    const auto res = pulse_optim(s);
    EXPECT_LT(res.final_fid_err, 1e-7);
}

TEST(PulseOptim, GradientDescentMethodRuns) {
    PulseOptimSpec s = x_spec();
    s.method = OptimMethod::kGradientDescent;
    s.max_iterations = 150;
    const auto res = pulse_optim(s);
    EXPECT_LT(res.final_fid_err, res.initial_fid_err);
}

TEST(PulseOptim, CrabMethodImprovesSeed) {
    PulseOptimSpec s = x_spec();
    s.method = OptimMethod::kCrab;
    s.initial_pulse = InitialPulseType::kSine;
    s.initial_scale = 0.6;
    s.max_evaluations = 4000;
    const auto res = pulse_optim(s);
    EXPECT_LT(res.final_fid_err, res.initial_fid_err);
}

TEST(PulseOptim, TargetErrStopsEarly) {
    PulseOptimSpec s = x_spec();
    s.target_fid_err = 1e-4;
    const auto res = pulse_optim(s);
    EXPECT_EQ(res.reason, optim::StopReason::kTargetReached);
    EXPECT_LE(res.final_fid_err, 1e-4);
}

TEST(PulseOptim, Validation) {
    PulseOptimSpec s = x_spec();
    s.h_ctrls.clear();
    EXPECT_THROW(pulse_optim(s), std::invalid_argument);

    s = x_spec();
    s.u_target = 2.0 * quantum::gates::x();  // not unitary
    EXPECT_THROW(pulse_optim(s), std::invalid_argument);

    s = x_spec();
    s.h_ctrls = {Mat::identity(3)};  // dim mismatch
    EXPECT_THROW(pulse_optim(s), std::invalid_argument);

    s = x_spec();
    s.collapse_ops = {sigma_minus()};
    s.subspace_isometry = quantum::qubit_isometry(2);
    EXPECT_THROW(pulse_optim(s), std::invalid_argument);
}

TEST(Crab, DirectCallOnGrapeProblem) {
    GrapeProblem p;
    p.system.drift = Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x()};
    p.target = quantum::gates::sx();
    p.n_timeslots = 16;
    p.evo_time = 3.0;
    p.initial_amps.assign(16, {0.4});
    CrabOptions opts;
    opts.max_evaluations = 3000;
    const auto res = crab_optimize(p, opts);
    EXPECT_LE(res.final_fid_err, res.initial_fid_err);
    EXPECT_EQ(res.final_amps.size(), 16u);
}

}  // namespace
}  // namespace qoc::control
