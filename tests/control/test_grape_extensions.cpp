#include <gtest/gtest.h>

#include <numbers>

#include "control/grape.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"

namespace qoc::control {
namespace {

using quantum::basis_ket;
using quantum::sigma_x;
using quantum::sigma_y;
using quantum::sigma_z;
namespace g = quantum::gates;

GrapeProblem base_problem(std::size_t n_ts = 16) {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = g::x();
    p.n_timeslots = n_ts;
    p.evo_time = 5.0;
    p.initial_amps.assign(n_ts, {0.3, 0.05});
    return p;
}

TEST(StateTransfer, ZeroToOne) {
    GrapeProblem p = base_problem();
    p.state_transfer = GrapeProblem::StateTransfer{basis_ket(2, 0), basis_ket(2, 1)};
    const auto res = grape_unitary(p, {.max_iterations = 200});
    EXPECT_LT(res.final_fid_err, 1e-9);
    // The realized unitary maps |0> to |1> (up to phase).
    const auto out = res.final_evolution * basis_ket(2, 0);
    EXPECT_NEAR(std::norm(out(1, 0)), 1.0, 1e-8);
}

TEST(StateTransfer, ZeroToPlus) {
    GrapeProblem p = base_problem();
    const auto plus = g::h() * basis_ket(2, 0);
    p.state_transfer = GrapeProblem::StateTransfer{basis_ket(2, 0), plus};
    const auto res = grape_unitary(p, {.max_iterations = 200});
    EXPECT_LT(res.final_fid_err, 1e-9);
    const auto out = res.final_evolution * basis_ket(2, 0);
    EXPECT_NEAR(quantum::state_fidelity(quantum::ket_to_dm(out), plus), 1.0, 1e-8);
}

TEST(StateTransfer, EasierThanFullGate) {
    // A state transfer constrains 1 column; with a single control and short
    // time the full X gate may be unreachable while |0> -> |1> still is.
    GrapeProblem p;
    p.system.drift = 0.1 * sigma_z();
    p.system.ctrls = {0.5 * sigma_x()};
    p.target = g::x();
    p.n_timeslots = 24;
    p.evo_time = 10.0;
    p.initial_amps.assign(24, {0.4});
    const auto gate_res = grape_unitary(p, {.max_iterations = 300});

    p.state_transfer = GrapeProblem::StateTransfer{basis_ket(2, 0), basis_ket(2, 1)};
    const auto st_res = grape_unitary(p, {.max_iterations = 300});
    EXPECT_LT(st_res.final_fid_err, 1e-8);
    EXPECT_LE(st_res.final_fid_err, gate_res.final_fid_err + 1e-12);
}

TEST(StateTransfer, Validation) {
    GrapeProblem p = base_problem();
    p.state_transfer = GrapeProblem::StateTransfer{basis_ket(3, 0), basis_ket(2, 1)};
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);
    p = base_problem();
    p.state_transfer = GrapeProblem::StateTransfer{basis_ket(2, 0), basis_ket(2, 1)};
    p.fidelity = FidelityType::kSu;
    EXPECT_THROW(grape_unitary(p), std::invalid_argument);
}

TEST(RobustGrape, SingleMemberMatchesPlain) {
    GrapeProblem p = base_problem();
    const auto plain = grape_unitary(p, {.max_iterations = 150});
    const auto robust = grape_robust(p, {linalg::Mat(2, 2)}, {1.0}, {.max_iterations = 150});
    EXPECT_NEAR(robust.combined.final_fid_err, plain.final_fid_err, 1e-8);
    ASSERT_EQ(robust.member_errors.size(), 1u);
}

TEST(RobustGrape, RobustPulseBeatsNominalUnderDetuning) {
    // Optimize (a) on the nominal model only, (b) over a +-delta detuning
    // ensemble; evaluate both on the detuned members.  The robust pulse must
    // do better off-nominal.
    const double delta = 0.06;
    GrapeProblem p = base_problem(24);
    p.evo_time = 14.0;
    p.initial_amps.assign(24, {0.2, 0.05});

    const auto nominal = grape_unitary(p, {.max_iterations = 300});

    const std::vector<linalg::Mat> ensemble = {
        (-delta / 2.0) * sigma_z(), linalg::Mat(2, 2), (delta / 2.0) * sigma_z()};
    const auto robust = grape_robust(p, ensemble, {1.0, 1.0, 1.0}, {.max_iterations = 300});

    // Evaluate both pulses on the detuned problems.
    auto eval_on = [&](const dynamics::ControlAmplitudes& amps, const linalg::Mat& drift_extra) {
        GrapeProblem q = p;
        q.system.drift = p.system.drift + drift_extra;
        return evaluate_fid_err(q, amps);
    };
    const double nominal_off = 0.5 * (eval_on(nominal.final_amps, ensemble[0]) +
                                      eval_on(nominal.final_amps, ensemble[2]));
    const double robust_off = 0.5 * (eval_on(robust.combined.final_amps, ensemble[0]) +
                                     eval_on(robust.combined.final_amps, ensemble[2]));
    EXPECT_LT(robust_off, nominal_off);
    EXPECT_LT(robust_off, 1e-3);
}

TEST(RobustGrape, MemberErrorsReported) {
    GrapeProblem p = base_problem();
    const std::vector<linalg::Mat> ensemble = {(-0.05) * sigma_z(), (0.05) * sigma_z()};
    const auto res = grape_robust(p, ensemble, {1.0, 1.0}, {.max_iterations = 200});
    ASSERT_EQ(res.member_errors.size(), 2u);
    const double mean = 0.5 * (res.member_errors[0] + res.member_errors[1]);
    EXPECT_NEAR(res.combined.final_fid_err, mean, 1e-10);
}

TEST(RobustGrape, Validation) {
    GrapeProblem p = base_problem();
    EXPECT_THROW(grape_robust(p, {}, {}), std::invalid_argument);
    EXPECT_THROW(grape_robust(p, {linalg::Mat(2, 2)}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(grape_robust(p, {linalg::Mat(2, 2)}, {0.0}), std::invalid_argument);
    p.fidelity = FidelityType::kTraceDiff;
    EXPECT_THROW(grape_robust(p, {linalg::Mat(2, 2)}, {1.0}), std::invalid_argument);
}

TEST(EnergyPenalty, ReducesPulseEnergy) {
    GrapeProblem p = base_problem(24);
    p.evo_time = 14.0;
    p.initial_amps.assign(24, {0.25, 0.1});
    const auto loose = grape_unitary(p, {.max_iterations = 300});
    p.energy_penalty = 0.05;
    const auto tight = grape_unitary(p, {.max_iterations = 300});

    auto energy = [](const dynamics::ControlAmplitudes& amps) {
        double e = 0.0;
        for (const auto& slot : amps)
            for (double a : slot) e += a * a;
        return e;
    };
    EXPECT_LT(energy(tight.final_amps), energy(loose.final_amps));
    // Fidelity stays high despite the regularizer.
    EXPECT_LT(tight.final_fid_err, 1e-4);
}

}  // namespace
}  // namespace qoc::control
