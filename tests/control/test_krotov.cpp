#include "control/krotov.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::control {
namespace {

using quantum::sigma_x;
using quantum::sigma_y;
namespace g = quantum::gates;

GrapeProblem x_problem(std::size_t n_ts = 16) {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = g::x();
    p.n_timeslots = n_ts;
    p.evo_time = 5.0;
    p.initial_amps.assign(n_ts, {0.3, 0.05});
    return p;
}

TEST(Krotov, ConvergesToXGate) {
    const auto res = krotov_unitary(x_problem(), {.lambda = 0.5, .max_iterations = 400});
    EXPECT_LT(res.final_fid_err, 1e-6);
    EXPECT_NEAR(quantum::fidelity_psu(g::x(), res.final_evolution), 1.0, 1e-5);
}

TEST(Krotov, MonotonicConvergence) {
    // Krotov's defining property: the functional improves every iteration.
    const auto res = krotov_unitary(x_problem(), {.lambda = 1.0, .max_iterations = 100});
    ASSERT_GT(res.fid_err_history.size(), 3u);
    for (std::size_t i = 1; i < res.fid_err_history.size(); ++i) {
        EXPECT_LE(res.fid_err_history[i], res.fid_err_history[i - 1] + 1e-12) << "iter " << i;
    }
}

TEST(Krotov, LargerLambdaSmallerSteps) {
    const auto fast = krotov_unitary(x_problem(), {.lambda = 0.5, .max_iterations = 40});
    const auto slow = krotov_unitary(x_problem(), {.lambda = 20.0, .max_iterations = 40});
    EXPECT_LT(fast.final_fid_err, slow.final_fid_err);
}

TEST(Krotov, RespectsAmplitudeBounds) {
    GrapeProblem p = x_problem();
    p.evo_time = 12.0;
    p.amp_lower = -0.4;
    p.amp_upper = 0.4;
    p.initial_amps.assign(p.n_timeslots, {0.25, 0.0});
    const auto res = krotov_unitary(p, {.lambda = 0.5, .max_iterations = 300});
    for (const auto& slot : res.final_amps) {
        for (double a : slot) {
            EXPECT_GE(a, -0.4 - 1e-12);
            EXPECT_LE(a, 0.4 + 1e-12);
        }
    }
    EXPECT_LT(res.final_fid_err, 1e-5);
}

TEST(Krotov, HadamardTarget) {
    GrapeProblem p = x_problem(24);
    p.target = g::h();
    p.initial_amps.assign(24, {0.25, 0.1});
    const auto res = krotov_unitary(p, {.lambda = 0.5, .max_iterations = 500});
    EXPECT_LT(res.final_fid_err, 1e-5);
}

TEST(Krotov, SubspaceThreeLevel) {
    GrapeProblem p;
    p.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    p.target = g::x();
    p.subspace_isometry = quantum::qubit_isometry(3);
    p.n_timeslots = 24;
    p.evo_time = 20.0;
    p.initial_amps.assign(24, {0.15, 0.0});
    const auto res = krotov_unitary(p, {.lambda = 0.8, .max_iterations = 500});
    EXPECT_LT(res.final_fid_err, 1e-4);
}

TEST(Krotov, TargetStopsEarly) {
    KrotovOptions opts;
    opts.lambda = 0.5;
    opts.max_iterations = 1000;
    opts.target_fid_err = 1e-3;
    const auto res = krotov_unitary(x_problem(), opts);
    EXPECT_EQ(res.reason, optim::StopReason::kTargetReached);
    EXPECT_LE(res.final_fid_err, 1e-3);
}

TEST(Krotov, Validation) {
    GrapeProblem p = x_problem();
    EXPECT_THROW(krotov_unitary(p, {.lambda = 0.0}), std::invalid_argument);
    p.fidelity = FidelityType::kTraceDiff;
    EXPECT_THROW(krotov_unitary(p), std::invalid_argument);
    p = x_problem();
    p.n_timeslots = 0;
    EXPECT_THROW(krotov_unitary(p), std::invalid_argument);
}

TEST(Krotov, ComparableToGrapeOnSameProblem) {
    // Both methods should reach high fidelity on this easy problem; GRAPE
    // (2nd order) typically in fewer iterations.
    const auto kr = krotov_unitary(x_problem(), {.lambda = 0.5, .max_iterations = 500});
    const auto gr = grape_unitary(x_problem(), {.max_iterations = 200});
    EXPECT_LT(kr.final_fid_err, 1e-6);
    EXPECT_LT(gr.final_fid_err, 1e-8);
    EXPECT_LE(gr.iterations, kr.iterations);
}

}  // namespace
}  // namespace qoc::control
