/// Tests for the pulse_optim API extensions: explicit seed tables and
/// per-control amplitude bounds.

#include <gtest/gtest.h>

#include "control/pulseoptim.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::control {
namespace {

using quantum::sigma_x;
using quantum::sigma_y;
namespace g = quantum::gates;

PulseOptimSpec base_spec() {
    PulseOptimSpec s;
    s.h_drift = linalg::Mat(2, 2);
    s.h_ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    s.u_target = g::x();
    s.n_timeslots = 12;
    s.evo_time = 5.0;
    return s;
}

TEST(ExplicitSeed, UsedVerbatim) {
    PulseOptimSpec s = base_spec();
    ControlAmplitudes seed(12, {0.31, -0.07});
    s.explicit_initial_amps = seed;
    const auto amps = build_initial_amps(s);
    ASSERT_EQ(amps.size(), 12u);
    EXPECT_DOUBLE_EQ(amps[0][0], 0.31);
    EXPECT_DOUBLE_EQ(amps[11][1], -0.07);
}

TEST(ExplicitSeed, ClippedIntoBounds) {
    PulseOptimSpec s = base_spec();
    s.amp_lower = -0.1;
    s.amp_upper = 0.1;
    s.explicit_initial_amps = ControlAmplitudes(12, {0.5, -0.5});
    const auto amps = build_initial_amps(s);
    EXPECT_DOUBLE_EQ(amps[3][0], 0.1);
    EXPECT_DOUBLE_EQ(amps[3][1], -0.1);
}

TEST(ExplicitSeed, ShapeValidated) {
    PulseOptimSpec s = base_spec();
    s.explicit_initial_amps = ControlAmplitudes(5, {0.1, 0.1});  // wrong slots
    EXPECT_THROW(build_initial_amps(s), std::invalid_argument);
    s.explicit_initial_amps = ControlAmplitudes(12, {0.1});  // wrong ctrls
    EXPECT_THROW(build_initial_amps(s), std::invalid_argument);
}

TEST(ExplicitSeed, OptimizationStartsThere) {
    PulseOptimSpec s = base_spec();
    ControlAmplitudes seed(12, {0.45, 0.0});
    s.explicit_initial_amps = seed;
    const auto res = pulse_optim(s);
    ASSERT_EQ(res.initial_amps.size(), 12u);
    EXPECT_DOUBLE_EQ(res.initial_amps[0][0], 0.45);
    EXPECT_LT(res.final_fid_err, 1e-8);
}

TEST(PerControlBounds, Respected) {
    PulseOptimSpec s = base_spec();
    s.evo_time = 12.0;
    s.amp_lower_per_ctrl = {-0.5, -0.02};
    s.amp_upper_per_ctrl = {0.5, 0.02};
    const auto res = pulse_optim(s);
    for (const auto& slot : res.final_amps) {
        EXPECT_LE(std::abs(slot[0]), 0.5 + 1e-12);
        EXPECT_LE(std::abs(slot[1]), 0.02 + 1e-12);
    }
    EXPECT_LT(res.final_fid_err, 1e-7);
}

TEST(PerControlBounds, SizeMismatchThrows) {
    PulseOptimSpec s = base_spec();
    s.amp_lower_per_ctrl = {-0.5};  // two controls
    s.amp_upper_per_ctrl = {0.5};
    EXPECT_THROW(pulse_optim(s), std::invalid_argument);
}

TEST(PerControlBounds, TightBoundForcesOtherControl) {
    // Pin the Y control to ~zero: the optimizer must realize X using the X
    // control alone (reachable: X only needs the x-axis rotation).
    PulseOptimSpec s = base_spec();
    s.evo_time = 12.0;
    s.amp_lower_per_ctrl = {-0.6, 0.0};
    s.amp_upper_per_ctrl = {0.6, 0.0};
    const auto res = pulse_optim(s);
    for (const auto& slot : res.final_amps) EXPECT_DOUBLE_EQ(slot[1], 0.0);
    EXPECT_LT(res.final_fid_err, 1e-8);
}

}  // namespace
}  // namespace qoc::control
