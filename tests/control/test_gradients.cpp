/// Systematic finite-difference verification of every GRAPE gradient path
/// through the public evaluate_fid_err_and_grad API.

#include <gtest/gtest.h>

#include "control/grape.hpp"
#include "optim/gradient_check.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::control {
namespace {

using quantum::sigma_minus;
using quantum::sigma_x;
using quantum::sigma_y;
namespace g = quantum::gates;

optim::Objective wrap(const GrapeProblem& prob) {
    return [prob](const std::vector<double>& x, std::vector<double>& grad) {
        ControlAmplitudes amps(prob.n_timeslots,
                               std::vector<double>(prob.system.ctrls.size()));
        for (std::size_t k = 0; k < prob.n_timeslots; ++k)
            for (std::size_t j = 0; j < prob.system.ctrls.size(); ++j)
                amps[k][j] = x[k * prob.system.ctrls.size() + j];
        return evaluate_fid_err_and_grad(prob, amps, grad);
    };
}

std::vector<double> test_point(std::size_t n) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = 0.25 * std::sin(1.7 * static_cast<double>(i) + 0.3);
    }
    return x;
}

TEST(GradientCheck, ClosedPsu) {
    GrapeProblem p;
    p.system.drift = 0.2 * quantum::sigma_z();
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = g::h();
    p.n_timeslots = 8;
    p.evo_time = 4.0;
    p.initial_amps.assign(8, {0.0, 0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(16));
    EXPECT_LT(res.max_rel_error, 1e-6);
}

TEST(GradientCheck, ClosedSu) {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x()};
    p.target = g::rx(1.0);
    p.fidelity = FidelityType::kSu;
    p.n_timeslots = 6;
    p.evo_time = 3.0;
    p.initial_amps.assign(6, {0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(6));
    EXPECT_LT(res.max_rel_error, 1e-6);
}

TEST(GradientCheck, ClosedSubspaceThreeLevel) {
    GrapeProblem p;
    p.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    p.target = g::x();
    p.subspace_isometry = quantum::qubit_isometry(3);
    p.n_timeslots = 6;
    p.evo_time = 6.0;
    p.initial_amps.assign(6, {0.0, 0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(12));
    EXPECT_LT(res.max_rel_error, 1e-5);
}

TEST(GradientCheck, OpenTraceDiff) {
    GrapeProblem p;
    p.system.drift = quantum::liouvillian(0.1 * quantum::sigma_z(),
                                          {std::sqrt(0.01) * sigma_minus()});
    p.system.ctrls = {quantum::liouvillian_hamiltonian(0.5 * sigma_x()),
                      quantum::liouvillian_hamiltonian(0.5 * sigma_y())};
    p.target = quantum::unitary_superop(g::x());
    p.fidelity = FidelityType::kTraceDiff;
    p.n_timeslots = 6;
    p.evo_time = 4.0;
    p.initial_amps.assign(6, {0.0, 0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(12));
    EXPECT_LT(res.max_rel_error, 1e-5);
}

TEST(GradientCheck, StateTransfer) {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = g::x();  // ignored
    p.state_transfer =
        GrapeProblem::StateTransfer{quantum::basis_ket(2, 0), quantum::basis_ket(2, 1)};
    p.n_timeslots = 8;
    p.evo_time = 4.0;
    p.initial_amps.assign(8, {0.0, 0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(16));
    EXPECT_LT(res.max_rel_error, 1e-6);
}

TEST(GradientCheck, EnergyPenaltyTerm) {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x()};
    p.target = g::rx(1.3);
    p.energy_penalty = 0.2;
    p.n_timeslots = 6;
    p.evo_time = 3.0;
    p.initial_amps.assign(6, {0.0});
    const auto res = optim::check_gradient(wrap(p), test_point(6));
    EXPECT_LT(res.max_rel_error, 1e-6);
}

}  // namespace
}  // namespace qoc::control
