#include "control/pulse_shapes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace qoc::control {
namespace {

TEST(PulseShapes, GaussianPeakAtCenterAndSymmetric) {
    const auto p = gaussian_pulse(64);
    const auto max_it = std::max_element(p.begin(), p.end());
    const std::size_t peak = max_it - p.begin();
    EXPECT_TRUE(peak == 31 || peak == 32);
    EXPECT_NEAR(*max_it, 1.0, 1e-3);
    for (std::size_t k = 0; k < p.size(); ++k) {
        EXPECT_NEAR(p[k], p[p.size() - 1 - k], 1e-12) << k;
    }
}

TEST(PulseShapes, GaussianDerivativeAntisymmetricUnitPeak) {
    const auto p = gaussian_derivative_pulse(64);
    double peak = 0.0;
    for (double v : p) peak = std::max(peak, std::abs(v));
    EXPECT_NEAR(peak, 1.0, 1e-12);
    for (std::size_t k = 0; k < p.size(); ++k) {
        EXPECT_NEAR(p[k], -p[p.size() - 1 - k], 1e-12) << k;
    }
    // Zero net area by antisymmetry.
    EXPECT_NEAR(pulse_area(p, 1.0), 0.0, 1e-10);
}

TEST(PulseShapes, DragQuadratureScaledByBeta) {
    const auto d = drag_pulse(32, 0.25, 0.5);
    const auto deriv = gaussian_derivative_pulse(32, 0.25);
    for (std::size_t k = 0; k < 32; ++k) {
        EXPECT_NEAR(d.quadrature[k], 0.5 * deriv[k], 1e-12);
    }
}

TEST(PulseShapes, GaussianSquareHasPlateau) {
    const auto p = gaussian_square_pulse(100, 0.6, 0.05);
    // Middle 50% must be exactly 1.
    for (std::size_t k = 30; k < 70; ++k) EXPECT_DOUBLE_EQ(p[k], 1.0);
    // Edges decay.
    EXPECT_LT(p.front(), 0.1);
    EXPECT_LT(p.back(), 0.1);
    EXPECT_THROW(gaussian_square_pulse(10, 1.5), std::invalid_argument);
}

TEST(PulseShapes, SineArchPositiveWithPeakCenter) {
    const auto p = sine_pulse(50);
    for (double v : p) EXPECT_GE(v, 0.0);
    EXPECT_NEAR(*std::max_element(p.begin(), p.end()), 1.0, 1e-3);
}

TEST(PulseShapes, SineCyclesZeroMean) {
    const auto p = sine_pulse_cycles(200, 3.0);
    EXPECT_NEAR(pulse_area(p, 1.0 / 200.0), 0.0, 1e-3);
}

TEST(PulseShapes, SquareAndZero) {
    const auto sq = square_pulse(8);
    for (double v : sq) EXPECT_DOUBLE_EQ(v, 1.0);
    const auto z = zero_pulse(8);
    for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PulseShapes, RandomDeterministicAndBounded) {
    const auto a = random_pulse(64, 42);
    const auto b = random_pulse(64, 42);
    EXPECT_EQ(a, b);
    const auto c = random_pulse(64, 43);
    EXPECT_NE(a, c);
    for (double v : a) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(PulseShapes, ScaledMultiplies) {
    const auto p = scaled(square_pulse(4), 0.3);
    for (double v : p) EXPECT_DOUBLE_EQ(v, 0.3);
}

TEST(PulseShapes, PulseAreaGaussianApproxAnalytic) {
    // Integral of exp(-t^2/(2 s^2)) over [0,1] with s = 0.1 and center 0.5:
    // approx s * sqrt(2 pi) = 0.2507 (tails negligible).
    const std::size_t n = 2000;
    const auto p = gaussian_pulse(n, 0.1);
    EXPECT_NEAR(pulse_area(p, 1.0 / n), 0.1 * std::sqrt(2.0 * M_PI), 1e-4);
}

TEST(PulseShapes, ResampleZohPreservesValues) {
    const std::vector<double> src{1.0, 2.0, 3.0, 4.0};
    const auto up = resample_zoh(src, 8);
    EXPECT_EQ(up.size(), 8u);
    EXPECT_DOUBLE_EQ(up[0], 1.0);
    EXPECT_DOUBLE_EQ(up[1], 1.0);
    EXPECT_DOUBLE_EQ(up[7], 4.0);
    const auto down = resample_zoh(up, 4);
    EXPECT_EQ(down, src);
}

TEST(PulseShapes, EmptyInputsThrow) {
    EXPECT_THROW(gaussian_pulse(0), std::invalid_argument);
    EXPECT_THROW(sine_pulse(0), std::invalid_argument);
    EXPECT_THROW(resample_zoh({}, 4), std::invalid_argument);
    EXPECT_THROW(resample_zoh({1.0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::control
