/// GRAPE gradients must be bit-identical regardless of the task-pool size:
/// every slot of the objective writes disjoint storage through its own
/// pooled workspace, so parallelism must not change a single ULP.  Guards
/// against anyone "optimizing" the evaluator with a reduction or a shared
/// accumulator that reorders floating-point sums.

#include "control/grape.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::control {
namespace {

using quantum::drive_x;
using quantum::drive_y;
using quantum::duffing_drift;
using quantum::qubit_isometry;

/// Three-level transmon X-gate design, the same shape as the paper's
/// single-qubit benchmarks (subspace isometry + leakage level).
GrapeProblem transmon_problem(std::size_t n_ts) {
    GrapeProblem p;
    p.system.drift = duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * drive_x(3), 0.5 * drive_y(3)};
    p.target = quantum::gates::x();
    p.subspace_isometry = qubit_isometry(3);
    p.n_timeslots = n_ts;
    p.evo_time = static_cast<double>(n_ts) * 0.25;
    p.fidelity = FidelityType::kPsu;
    p.initial_amps.resize(n_ts);
    for (std::size_t k = 0; k < n_ts; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(n_ts);
        p.initial_amps[k] = {0.3 * t, 0.2 * (1.0 - t)};
    }
    return p;
}

/// Open-system (Lindblad, kTraceDiff) variant exercising the Pade path.
GrapeProblem open_problem(std::size_t n_ts) {
    GrapeProblem p;
    p.system.drift = quantum::liouvillian(Mat(2, 2), {0.05 * quantum::sigma_minus()});
    p.system.ctrls = {quantum::liouvillian_hamiltonian(0.5 * quantum::sigma_x())};
    p.target = quantum::unitary_superop(quantum::gates::x());
    p.n_timeslots = n_ts;
    p.evo_time = static_cast<double>(n_ts) * 0.3;
    p.fidelity = FidelityType::kTraceDiff;
    p.initial_amps.assign(n_ts, {0.35});
    return p;
}

/// Evaluates err + grad at a fixed task-pool size, restoring the previous
/// size afterwards.
double eval_with_threads(int n_threads, const GrapeProblem& p, std::vector<double>& grad) {
    runtime::ScopedPoolSize scoped(static_cast<std::size_t>(n_threads));
    return evaluate_fid_err_and_grad(p, p.initial_amps, grad);
}

TEST(GrapeDeterminism, ClosedGradientBitIdenticalAcrossThreadCounts) {
    const GrapeProblem p = transmon_problem(24);
    std::vector<double> g1, gn;
    const double e1 = eval_with_threads(1, p, g1);
    for (int threads : {2, 4, 8}) {
        const double en = eval_with_threads(threads, p, gn);
        EXPECT_EQ(e1, en) << "threads=" << threads;  // bitwise, not approx
        ASSERT_EQ(g1.size(), gn.size());
        for (std::size_t i = 0; i < g1.size(); ++i) {
            EXPECT_EQ(g1[i], gn[i]) << "threads=" << threads << " i=" << i;
        }
    }
}

TEST(GrapeDeterminism, OpenGradientBitIdenticalAcrossThreadCounts) {
    const GrapeProblem p = open_problem(16);
    std::vector<double> g1, gn;
    const double e1 = eval_with_threads(1, p, g1);
    const double en = eval_with_threads(4, p, gn);
    EXPECT_EQ(e1, en);
    ASSERT_EQ(g1.size(), gn.size());
    for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_EQ(g1[i], gn[i]) << "i=" << i;
}

TEST(GrapeDeterminism, RepeatedEvaluationReusesWorkspaceBitIdentically) {
    // Same evaluator-facing API called twice in a row: workspace reuse must
    // be stateless (second call sees dirty buffers and must not care).
    const GrapeProblem p = transmon_problem(16);
    std::vector<double> ga, gb;
    const double ea = evaluate_fid_err_and_grad(p, p.initial_amps, ga);
    const double eb = evaluate_fid_err_and_grad(p, p.initial_amps, gb);
    EXPECT_EQ(ea, eb);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_EQ(ga[i], gb[i]);
}

}  // namespace
}  // namespace qoc::control
