#include "control/goat.hpp"

#include <gtest/gtest.h>

#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::control {
namespace {

using quantum::sigma_x;
using quantum::sigma_y;
namespace g = quantum::gates;

GrapeProblem x_problem() {
    GrapeProblem p;
    p.system.drift = linalg::Mat(2, 2);
    p.system.ctrls = {0.5 * sigma_x(), 0.5 * sigma_y()};
    p.target = g::x();
    p.evo_time = 40.0;
    return p;
}

TEST(Goat, ConvergesToXGate) {
    const auto res = goat_optimize(x_problem(), {.n_harmonics = 3, .n_fine = 96});
    EXPECT_LT(res.final_fid_err, 1e-8);
    EXPECT_LT(res.final_fid_err, res.initial_fid_err);
    EXPECT_EQ(res.params.size(), 2u * 2u * 3u);
}

TEST(Goat, ControlsAreSmoothAndZeroEnded) {
    GoatOptions opts;
    opts.n_harmonics = 3;
    opts.n_fine = 200;
    const auto res = goat_optimize(x_problem(), opts);
    const auto& amps = res.final_amps;
    ASSERT_EQ(amps.size(), 200u);
    // Envelope forces the ends toward zero.
    EXPECT_LT(std::abs(amps.front()[0]), 0.05);
    EXPECT_LT(std::abs(amps.back()[0]), 0.05);
    // Smoothness: neighboring samples differ by much less than the range.
    double max_jump = 0.0, max_abs = 0.0;
    for (std::size_t k = 1; k < amps.size(); ++k) {
        max_jump = std::max(max_jump, std::abs(amps[k][0] - amps[k - 1][0]));
        max_abs = std::max(max_abs, std::abs(amps[k][0]));
    }
    EXPECT_LT(max_jump, 0.15 * max_abs);
}

TEST(Goat, SquashRespectsAmplitudeBound) {
    GoatOptions opts;
    opts.n_harmonics = 4;
    opts.n_fine = 96;
    opts.amp_bound = 0.08;
    // The bound caps the rotation rate; give the pulse enough time for pi.
    GrapeProblem p = x_problem();
    p.evo_time = 120.0;
    const auto res = goat_optimize(p, opts);
    for (const auto& slot : res.final_amps) {
        for (double a : slot) EXPECT_LE(std::abs(a), 0.08 + 1e-12);
    }
    EXPECT_LT(res.final_fid_err, 1e-6);
}

TEST(Goat, HadamardTarget) {
    GrapeProblem p = x_problem();
    p.target = g::h();
    const auto res = goat_optimize(p, {.n_harmonics = 4, .n_fine = 96});
    EXPECT_LT(res.final_fid_err, 1e-7);
    EXPECT_NEAR(quantum::fidelity_psu(g::h(), evaluate_evolution(
                                                  [&] {
                                                      GrapeProblem q = p;
                                                      q.n_timeslots = 96;
                                                      q.amp_lower = -1e30;
                                                      q.amp_upper = 1e30;
                                                      return q;
                                                  }(),
                                                  res.final_amps)),
                1.0, 1e-6);
}

TEST(Goat, WarmStartReproducible) {
    GoatOptions opts;
    opts.n_harmonics = 2;
    opts.n_fine = 64;
    const auto first = goat_optimize(x_problem(), opts);
    opts.initial_params = first.params;
    const auto second = goat_optimize(x_problem(), opts);
    EXPECT_LE(second.final_fid_err, first.final_fid_err + 1e-12);
    EXPECT_LE(second.iterations, 3);
}

TEST(Goat, GoatControlsMatchesOptimizeOutput) {
    GoatOptions opts;
    opts.n_harmonics = 2;
    opts.n_fine = 64;
    const auto res = goat_optimize(x_problem(), opts);
    const auto resampled = goat_controls(res.params, 2, 40.0, opts);
    for (std::size_t k = 0; k < resampled.size(); ++k) {
        EXPECT_NEAR(resampled[k][0], res.final_amps[k][0], 1e-12);
        EXPECT_NEAR(resampled[k][1], res.final_amps[k][1], 1e-12);
    }
}

TEST(Goat, Validation) {
    GrapeProblem p = x_problem();
    EXPECT_THROW(goat_optimize(p, {.n_harmonics = 0}), std::invalid_argument);
    GoatOptions opts;
    opts.initial_params = {1.0};
    EXPECT_THROW(goat_optimize(p, opts), std::invalid_argument);
    EXPECT_THROW(goat_controls({1.0}, 2, 40.0, GoatOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::control
