# End-to-end telemetry smoke (driven by ctest, see tests/CMakeLists.txt):
# run the fleet-calibration example with the full telemetry stack enabled,
# then require qoc_obs_report --check to pass over the produced stream.
#
# Expects: -DFLEET=<fleet example binary> -DREPORT=<qoc_obs_report binary>
#          -DWORK_DIR=<writable scratch directory>

set(metrics "${WORK_DIR}/obs_smoke_metrics.jsonl")
set(trace "${WORK_DIR}/obs_smoke_trace.json")
file(REMOVE "${metrics}" "${trace}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          QOC_METRICS=${metrics}
          QOC_TRACE=${trace}
          QOC_SNAPSHOT_MS=20
          QOC_FLEET_DEVICES=2
          QOC_FLEET_DAYS=3
          QOC_FLEET_REQUESTS=12
          ${FLEET}
  RESULT_VARIABLE fleet_rc)
if(NOT fleet_rc EQUAL 0)
  message(FATAL_ERROR "fleet example failed (rc=${fleet_rc})")
endif()

foreach(f IN ITEMS "${metrics}" "${trace}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "telemetry output missing: ${f}")
  endif()
endforeach()

execute_process(
  COMMAND ${REPORT} ${metrics} --trace ${trace} --check
  RESULT_VARIABLE report_rc)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "qoc_obs_report --check failed (rc=${report_rc})")
endif()
