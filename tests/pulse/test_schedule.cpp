#include "pulse/schedule.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "pulse/circuit.hpp"
#include "pulse/instruction_map.hpp"

namespace qoc::pulse {
namespace {

Schedule x_gate_schedule(std::size_t duration = 16, std::size_t qubit = 0) {
    Schedule s("x");
    s.insert(0, Play{drag_waveform(duration, {0.5, 0.0}, 0.2), drive_channel(qubit)});
    return s;
}

TEST(Schedule, AppendAdvancesChannelClock) {
    Schedule s;
    s.append(Play{constant_waveform(8, {0.1, 0.0}), drive_channel(0)});
    s.append(Play{constant_waveform(4, {0.2, 0.0}), drive_channel(0)});
    EXPECT_EQ(s.channel_duration(drive_channel(0)), 12u);
    // A different channel starts at its own zero.
    s.append(Play{constant_waveform(2, {0.3, 0.0}), drive_channel(1)});
    EXPECT_EQ(s.channel_duration(drive_channel(1)), 2u);
    EXPECT_EQ(s.total_duration(), 12u);
}

TEST(Schedule, AppendScheduleSequences) {
    Schedule a = x_gate_schedule(10);
    Schedule b = x_gate_schedule(6);
    a.append_schedule(b);
    EXPECT_EQ(a.total_duration(), 16u);
    EXPECT_EQ(a.instructions().size(), 2u);
    EXPECT_EQ(a.instructions()[1].first, 10u);
}

TEST(Schedule, ChannelsListsDistinct) {
    Schedule s;
    s.insert(0, Play{constant_waveform(4, {0.1, 0.0}), drive_channel(0)});
    s.insert(0, Play{constant_waveform(4, {0.1, 0.0}), control_channel(1)});
    s.insert(4, Acquire{8, acquire_channel(0)});
    EXPECT_EQ(s.channels().size(), 3u);
}

TEST(Schedule, SamplesResolvePlays) {
    Schedule s;
    s.insert(2, Play{constant_waveform(3, {0.4, 0.0}), drive_channel(0)});
    const auto samples = s.channel_samples(drive_channel(0), 8);
    EXPECT_EQ(samples.size(), 8u);
    EXPECT_EQ(samples[0], std::complex<double>(0.0, 0.0));
    EXPECT_NEAR(samples[2].real(), 0.4, 1e-15);
    EXPECT_NEAR(samples[4].real(), 0.4, 1e-15);
    EXPECT_EQ(samples[5], std::complex<double>(0.0, 0.0));
}

TEST(Schedule, ShiftPhaseRotatesSubsequentPlays) {
    Schedule s;
    s.append(Play{constant_waveform(2, {0.5, 0.0}), drive_channel(0)});
    s.insert(2, ShiftPhase{std::numbers::pi / 2.0, drive_channel(0)});
    s.insert(2, Play{constant_waveform(2, {0.5, 0.0}), drive_channel(0)});
    const auto samples = s.channel_samples(drive_channel(0), 4);
    EXPECT_NEAR(samples[0].real(), 0.5, 1e-15);
    EXPECT_NEAR(samples[0].imag(), 0.0, 1e-15);
    // After the frame change the same real pulse appears rotated by pi/2.
    EXPECT_NEAR(samples[2].real(), 0.0, 1e-12);
    EXPECT_NEAR(samples[2].imag(), 0.5, 1e-12);
}

TEST(Schedule, PhaseAccumulates) {
    Schedule s;
    s.insert(0, ShiftPhase{std::numbers::pi / 2.0, drive_channel(0)});
    s.insert(0, ShiftPhase{std::numbers::pi / 2.0, drive_channel(0)});
    s.insert(0, Play{constant_waveform(1, {1.0, 0.0}), drive_channel(0)});
    const auto samples = s.channel_samples(drive_channel(0), 1);
    EXPECT_NEAR(samples[0].real(), -1.0, 1e-12);
}

TEST(Schedule, OverlappingPlaysThrow) {
    Schedule s;
    s.insert(0, Play{constant_waveform(4, {0.1, 0.0}), drive_channel(0)});
    s.insert(2, Play{constant_waveform(4, {0.1, 0.0}), drive_channel(0)});
    EXPECT_THROW(s.channel_samples(drive_channel(0), 8), std::runtime_error);
}

TEST(Schedule, AcquiresReported) {
    Schedule s;
    s.insert(10, Acquire{16, acquire_channel(0)});
    s.insert(10, Acquire{16, acquire_channel(1)});
    const auto acqs = s.acquires();
    ASSERT_EQ(acqs.size(), 2u);
    EXPECT_EQ(acqs[0].first, 10u);
}

TEST(Circuit, BuildsAndValidates) {
    QuantumCircuit qc(2);
    qc.x(0).rz(1, 0.3).cx(0, 1).measure_all();
    EXPECT_EQ(qc.ops().size(), 3u);
    EXPECT_EQ(qc.measurements().size(), 2u);
    EXPECT_THROW(qc.x(2), std::invalid_argument);
    EXPECT_THROW(qc.measure(5), std::invalid_argument);
}

TEST(Circuit, LoweringUsesBackendDefaults) {
    InstructionScheduleMap defaults;
    defaults.add("x", {0}, x_gate_schedule(16));
    QuantumCircuit qc(1);
    qc.x(0).measure(0);
    const Schedule sched = circuit_to_schedule(qc, defaults, 4);
    EXPECT_EQ(sched.total_duration(), 20u);  // 16 pulse + 4 acquire
    EXPECT_EQ(sched.acquires().size(), 1u);
    EXPECT_EQ(sched.acquires()[0].first, 16u);
}

TEST(Circuit, CalibrationShadowsDefault) {
    InstructionScheduleMap defaults;
    defaults.add("x", {0}, x_gate_schedule(16));
    QuantumCircuit qc(1);
    Schedule custom("x_custom");
    custom.insert(0, Play{constant_waveform(8, {0.7, 0.0}), drive_channel(0)});
    qc.add_calibration("x", {0}, custom);
    qc.x(0);
    const Schedule sched = circuit_to_schedule(qc, defaults);
    EXPECT_EQ(sched.total_duration(), 8u);  // the custom, shorter pulse won
}

TEST(Circuit, RzBecomesShiftPhase) {
    InstructionScheduleMap defaults;
    QuantumCircuit qc(1);
    qc.rz(0, 0.7);
    const Schedule sched = circuit_to_schedule(qc, defaults);
    ASSERT_EQ(sched.instructions().size(), 1u);
    const auto* sp = std::get_if<ShiftPhase>(&sched.instructions()[0].second);
    ASSERT_NE(sp, nullptr);
    EXPECT_NEAR(sp->phase, -0.7, 1e-15);
    EXPECT_EQ(sched.total_duration(), 0u);  // virtual, zero duration
}

TEST(Circuit, HadamardDecomposesWhenUncalibrated) {
    InstructionScheduleMap defaults;
    defaults.add("sx", {0}, x_gate_schedule(16));
    QuantumCircuit qc(1);
    qc.h(0);
    const Schedule sched = circuit_to_schedule(qc, defaults);
    // rz + sx + rz: one play, two phase shifts.
    std::size_t plays = 0, shifts = 0;
    for (const auto& [t, inst] : sched.instructions()) {
        plays += std::holds_alternative<Play>(inst);
        shifts += std::holds_alternative<ShiftPhase>(inst);
    }
    EXPECT_EQ(plays, 1u);
    EXPECT_EQ(shifts, 2u);
}

TEST(Circuit, MissingGateThrows) {
    InstructionScheduleMap defaults;
    QuantumCircuit qc(1);
    qc.gate("mystery", {0});
    EXPECT_THROW(circuit_to_schedule(qc, defaults), std::runtime_error);
}

TEST(Circuit, GatesOnSameQubitSequence) {
    InstructionScheduleMap defaults;
    defaults.add("x", {0}, x_gate_schedule(16));
    QuantumCircuit qc(1);
    qc.x(0).x(0);
    const Schedule sched = circuit_to_schedule(qc, defaults);
    EXPECT_EQ(sched.total_duration(), 32u);
}

TEST(Circuit, TwoQubitGateAlignsBothQubits) {
    InstructionScheduleMap defaults;
    defaults.add("x", {0}, x_gate_schedule(16, 0));
    Schedule cx("cx");
    cx.insert(0, Play{gaussian_square_waveform(32, {0.3, 0.0}), control_channel(0)});
    cx.insert(0, Play{constant_waveform(32, {0.1, 0.0}), drive_channel(1)});
    defaults.add("cx", {0, 1}, cx);

    QuantumCircuit qc(2);
    qc.x(0).cx(0, 1);
    const Schedule sched = circuit_to_schedule(qc, defaults);
    // The CX waits for qubit 0's X pulse even though its own schedule only
    // touches U0 and D1: gates align on all channels of their qubits.
    EXPECT_EQ(sched.total_duration(), 48u);
}

TEST(Circuit, RzShiftsControlChannelFrames) {
    // With U0 locked to qubit 1's frame, rz on qubit 1 must shift both D1
    // and U0.
    FrameConfig frames;
    frames.extra_channels[1] = {control_channel(0)};
    InstructionScheduleMap defaults;
    QuantumCircuit qc(2);
    qc.rz(1, 0.9);
    const Schedule sched = circuit_to_schedule(qc, defaults, 0, frames);
    std::size_t shifts = 0;
    for (const auto& [t, inst] : sched.instructions()) {
        if (const auto* sp = std::get_if<ShiftPhase>(&inst)) {
            EXPECT_NEAR(sp->phase, -0.9, 1e-15);
            ++shifts;
        }
    }
    EXPECT_EQ(shifts, 2u);
}

}  // namespace
}  // namespace qoc::pulse
