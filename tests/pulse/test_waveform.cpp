#include "pulse/waveform.hpp"

#include <gtest/gtest.h>

#include "pulse/channels.hpp"

namespace qoc::pulse {
namespace {

TEST(Channels, Labels) {
    EXPECT_EQ(drive_channel(0).label(), "D0");
    EXPECT_EQ(control_channel(1).label(), "U1");
    EXPECT_EQ(acquire_channel(2).label(), "A2");
    EXPECT_EQ(measure_channel(3).label(), "M3");
}

TEST(Channels, Ordering) {
    EXPECT_LT(drive_channel(0), drive_channel(1));
    EXPECT_NE(drive_channel(0), control_channel(0));
}

TEST(Waveform, RejectsEmptyAndOverUnit) {
    EXPECT_THROW(Waveform(std::vector<std::complex<double>>{}), std::invalid_argument);
    EXPECT_THROW(Waveform(std::vector<std::complex<double>>{{1.5, 0.0}}),
                 std::invalid_argument);
    EXPECT_NO_THROW(Waveform(std::vector<std::complex<double>>{{1.0, 0.0}}));
}

TEST(Waveform, GaussianShape) {
    const auto w = gaussian_waveform(64, {0.5, 0.0});
    EXPECT_EQ(w.duration(), 64u);
    EXPECT_NEAR(w.max_amp(), 0.5, 1e-3);
    EXPECT_EQ(w.name(), "gaussian");
}

TEST(Waveform, DragHasQuadrature) {
    const auto w = drag_waveform(64, {0.4, 0.0}, 0.3);
    double max_q = 0.0;
    for (const auto& s : w.samples()) max_q = std::max(max_q, std::abs(s.imag()));
    EXPECT_GT(max_q, 0.05);
    EXPECT_NEAR(max_q, 0.4 * 0.3, 0.02);
}

TEST(Waveform, GaussianSquarePlateau) {
    const auto w = gaussian_square_waveform(100, {0.8, 0.0}, 0.5, 0.05);
    EXPECT_NEAR(std::abs(w.samples()[50]), 0.8, 1e-12);
    EXPECT_LT(std::abs(w.samples()[0]), 0.1);
}

TEST(Waveform, SineAndConstant) {
    const auto s = sine_waveform(10, {1.0, 0.0});
    EXPECT_GE(s.samples()[5].real(), 0.9);
    const auto c = constant_waveform(4, {0.25, 0.0});
    for (const auto& v : c.samples()) EXPECT_NEAR(v.real(), 0.25, 1e-15);
}

TEST(Waveform, IqWaveformFromOptimizer) {
    const std::vector<double> i_samples{0.1, 0.2, 0.3};
    const std::vector<double> q_samples{-0.1, 0.0, 0.1};
    const auto w = iq_waveform(i_samples, q_samples, "opt");
    EXPECT_EQ(w.duration(), 3u);
    EXPECT_NEAR(w.samples()[0].real(), 0.1, 1e-15);
    EXPECT_NEAR(w.samples()[0].imag(), -0.1, 1e-15);
    EXPECT_THROW(iq_waveform({0.1}, {0.1, 0.2}), std::invalid_argument);
}

TEST(Waveform, IqClipOption) {
    // |1.0 + 1.0i| = sqrt(2) > 1: throws without clip, normalizes with clip.
    EXPECT_THROW(iq_waveform({1.0}, {1.0}), std::invalid_argument);
    const auto w = iq_waveform({1.0}, {1.0}, "clipped", /*clip=*/true);
    EXPECT_NEAR(std::abs(w.samples()[0]), 1.0, 1e-12);
}

}  // namespace
}  // namespace qoc::pulse
