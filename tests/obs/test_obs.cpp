/// Core `qoc::obs` behavior: disabled-path no-ops, span nesting and
/// per-thread merge ordering, ring overflow accounting, counter totals under
/// concurrent threads, and the JSONL / chrome-trace file formats (golden
/// round-trip).

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace qoc::obs {
namespace {

/// Every test starts and ends from a clean registry so ordering between
/// tests (and any earlier-registered worker-thread slots) cannot leak state.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override { reset_for_testing(); }
    void TearDown() override { reset_for_testing(); }
};

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

std::string read_all(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Busy-waits until the trace clock ticks, so nested spans get distinct
/// timestamps and the (t0, tid) sort order is deterministic.
void tick() {
    const std::uint64_t t = detail::now_ns();
    while (detail::now_ns() == t) {
    }
}

TEST_F(ObsTest, DisabledPathRecordsNothing) {
    count(Cnt::kGemmCalls);
    count(Cnt::kGemvCalls, 42);
    { Span s("ignored"); }
    set_gauge("ignored.gauge", 1.0);
    hist_observe("ignored.hist", 3);

    EXPECT_EQ(counter_value(Cnt::kGemmCalls), 0u);
    EXPECT_EQ(counter_value(Cnt::kGemvCalls), 0u);
    EXPECT_TRUE(snapshot_trace_events().empty());
    EXPECT_EQ(dropped_trace_events(), 0u);
}

TEST_F(ObsTest, SpanNestingPreservesContainment) {
    enable_tracing("");
    {
        Span outer("outer");
        tick();
        {
            Span inner("inner");
            tick();
        }
        tick();
    }
    const auto events = snapshot_trace_events();
    ASSERT_EQ(events.size(), 2u);
    // The inner span completes (and is recorded) first; the snapshot's
    // (t0, tid) sort restores begin order: outer, then inner inside it.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_LT(events[0].t0_ns, events[1].t0_ns);
    EXPECT_GE(events[0].t0_ns + events[0].dur_ns, events[1].t0_ns + events[1].dur_ns);
}

TEST_F(ObsTest, PerThreadRingsMergeTimeSorted) {
    enable_tracing("");
    constexpr int kSpansPerThread = 50;
    constexpr int kTeamSize = 4;
    {
        std::vector<std::thread> team;
        team.reserve(kTeamSize);
        for (int t = 0; t < kTeamSize; ++t) {
            team.emplace_back([] {
                for (int i = 0; i < kSpansPerThread; ++i) {
                    Span s("work");
                    tick();
                }
            });
        }
        for (auto& th : team) th.join();
    }
    const auto events = snapshot_trace_events();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kTeamSize * kSpansPerThread));
    std::set<std::uint32_t> tids;
    for (std::size_t i = 0; i < events.size(); ++i) {
        tids.insert(events[i].tid);
        if (i > 0) {
            const bool ordered =
                events[i - 1].t0_ns < events[i].t0_ns ||
                (events[i - 1].t0_ns == events[i].t0_ns &&
                 events[i - 1].tid <= events[i].tid);
            EXPECT_TRUE(ordered) << "events out of (t0, tid) order at " << i;
        }
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kTeamSize));
    EXPECT_EQ(dropped_trace_events(), 0u);
}

TEST_F(ObsTest, RingOverflowKeepsNewestAndCountsDropped) {
    enable_tracing("");
    constexpr std::uint64_t kCapacity = 16384;  // must match obs.cpp
    constexpr std::uint64_t kExtra = 100;
    for (std::uint64_t i = 0; i < kCapacity + kExtra; ++i) {
        Span s("burst");
    }
    EXPECT_EQ(dropped_trace_events(), kExtra);
    EXPECT_EQ(snapshot_trace_events().size(), kCapacity);
}

TEST_F(ObsTest, CounterTotalsSumAcrossThreads) {
    enable_metrics("");  // memory-only: metrics without the JSONL stream
    EXPECT_TRUE(metrics_enabled());
    EXPECT_FALSE(telemetry_enabled());
    constexpr int kPerThread = 10000;
    constexpr int kTeamSize = 4;
    {
        std::vector<std::thread> team;
        team.reserve(kTeamSize);
        for (int t = 0; t < kTeamSize; ++t) {
            team.emplace_back([] {
                for (int i = 0; i < kPerThread; ++i) count(Cnt::kGemmCalls);
                count(Cnt::kGemvCalls, 7);
            });
        }
        for (auto& th : team) th.join();
    }
    EXPECT_EQ(counter_value(Cnt::kGemmCalls),
              static_cast<std::uint64_t>(kTeamSize) * kPerThread);
    EXPECT_EQ(counter_value(Cnt::kGemvCalls), static_cast<std::uint64_t>(kTeamSize) * 7);
    EXPECT_EQ(counter_value(Cnt::kLuFactorizations), 0u);
}

TEST_F(ObsTest, JsonlGoldenRoundTrip) {
    const std::string path = ::testing::TempDir() + "qoc_obs_telemetry.jsonl";
    enable_metrics(path);
    ASSERT_TRUE(telemetry_enabled());

    // Exactly-representable doubles make the %.17g output predictable.
    emit_optimizer_iteration("lbfgsb", 3, 0.125, 0.25, 0.5, 7, 1.5);
    emit_rb_seed("rb1q", 16, 2, 0.75);
    count(Cnt::kGemmCalls, 5);
    count(Cnt::kExpmPade5, 2);
    hist_observe("test.hist", 3);
    hist_observe("test.hist", 3);
    hist_observe("test.hist", 5);
    set_gauge("test.gauge", 2.5);
    flush();

    const auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0],
              "{\"type\":\"optimizer_iteration\",\"optimizer\":\"lbfgsb\","
              "\"iteration\":3,\"cost\":0.125,\"grad_norm\":0.25,\"step\":0.5,"
              "\"n_fun_evals\":7,\"wall_time_s\":1.5}");
    // The obs thread index depends on process-wide registration order, so
    // only the prefix is golden.
    EXPECT_EQ(lines[1].rfind("{\"type\":\"rb_seed\",\"experiment\":\"rb1q\","
                             "\"length\":16,\"seed\":2,\"survival\":0.75,\"thread\":",
                             0),
              0u)
        << lines[1];
    EXPECT_EQ(lines[1].back(), '}');

    const std::string& metrics = lines[2];
    EXPECT_EQ(metrics.rfind("{\"type\":\"metrics\",\"counters\":{", 0), 0u) << metrics;
    EXPECT_NE(metrics.find("\"linalg.gemm.calls\":5"), std::string::npos);
    EXPECT_NE(metrics.find("\"linalg.expm.pade5\":2"), std::string::npos);
    EXPECT_NE(metrics.find(
                  "\"linalg.expm.pade_order\":{\"3\":0,\"5\":2,\"7\":0,\"9\":0,\"13\":0}"),
              std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("\"test.hist\":{\"3\":2,\"5\":1}"), std::string::npos);
    EXPECT_NE(metrics.find("\"test.gauge\":2.5"), std::string::npos);
    // No hist_record calls above: the latency-histogram object stays empty.
    EXPECT_NE(metrics.find("\"latency_histograms\":{}"), std::string::npos) << metrics;
    EXPECT_NE(metrics.find("\"dropped_trace_events\":0"), std::string::npos);
    EXPECT_NE(metrics.find("\"trace_rings\":["), std::string::npos) << metrics;
    std::remove(path.c_str());
}

TEST_F(ObsTest, TraceFileIsChromeTracingJson) {
    const std::string path = ::testing::TempDir() + "qoc_obs_trace.json";
    enable_tracing(path);
    {
        Span a("alpha");
        tick();
    }
    {
        Span b("beta");
        tick();
    }
    flush();

    const std::string body = read_all(path);
    EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(body.find("\"name\":\"alpha\",\"ph\":\"X\",\"ts\":"), std::string::npos);
    EXPECT_NE(body.find("\"name\":\"beta\""), std::string::npos);
    EXPECT_NE(body.find("\"pid\":1,\"tid\":"), std::string::npos);
    // Ring accounting rides along as metadata so truncated traces are
    // diagnosable offline.
    EXPECT_NE(body.find("],\"displayTimeUnit\":\"ms\",\"metadata\":{"
                        "\"dropped_trace_events\":0,\"trace_rings\":["),
              std::string::npos)
        << body;
    std::remove(path.c_str());
}

TEST_F(ObsTest, RequestScopeTagsSpansAndCrossesTaskBoundaries) {
    enable_tracing("");
    {
        Span before("untagged");
        tick();
    }
    {
        RequestScope req(0xfeedbeefull);
        Span tagged("tagged");
        tick();
        {
            // A nested scope overrides, then restores on exit.
            RequestScope inner_req(0x1234ull);
            Span inner("inner");
            tick();
        }
        // What the task runtime does on a worker: install the submitter's
        // span AND request for the task's duration.
        const std::uint64_t parent = current_span();
        const std::uint64_t request = current_request();
        std::thread worker([parent, request] {
            TaskParentScope scope(parent, request);
            Span task_span("task");
            tick();
        });
        worker.join();
        tick();
    }
    EXPECT_EQ(current_request(), 0u);

    const auto events = snapshot_trace_events();
    ASSERT_EQ(events.size(), 4u);
    for (const TraceEvent& e : events) {
        if (std::string(e.name) == "untagged") {
            EXPECT_EQ(e.request, 0u);
        } else if (std::string(e.name) == "inner") {
            EXPECT_EQ(e.request, 0x1234u);
        } else {
            EXPECT_EQ(e.request, 0xfeedbeefu) << e.name;
        }
    }
    // The worker's span reparented to the submitting span.
    for (const TraceEvent& e : events) {
        if (std::string(e.name) == "task") {
            bool found_parent = false;
            for (const TraceEvent& p : events) {
                if (p.id == e.parent) {
                    EXPECT_STREQ(p.name, "tagged");
                    found_parent = true;
                }
            }
            EXPECT_TRUE(found_parent);
        }
    }
}

TEST_F(ObsTest, ServiceRequestRecordGolden) {
    const std::string path = ::testing::TempDir() + "qoc_obs_service_req.jsonl";
    enable_metrics(path);
    ASSERT_TRUE(telemetry_enabled());
    emit_service_request(/*id=*/42, /*seq=*/7, /*key=*/99, /*device=*/1, "sx",
                         /*qubit=*/2, /*duration_dt=*/64, "interactive", "hit",
                         /*redesign=*/false, /*latency_ns=*/1500);
    flush();
    const auto lines = read_lines(path);
    ASSERT_GE(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              "{\"type\":\"service_request\",\"id\":42,\"seq\":7,\"key\":99,"
              "\"device\":1,\"gate\":\"sx\",\"qubit\":2,\"duration_dt\":64,"
              "\"lane\":\"interactive\",\"outcome\":\"hit\",\"redesign\":0,"
              "\"latency_ns\":1500}");
    std::remove(path.c_str());
}

TEST_F(ObsTest, CounterNamesAreStable) {
    EXPECT_STREQ(counter_name(Cnt::kGemmCalls), "linalg.gemm.calls");
    EXPECT_STREQ(counter_name(Cnt::kPropCacheHits), "executor.prop_cache.hits");
    EXPECT_STREQ(counter_name(Cnt::kCliffMemoMisses), "rb.clifford_memo.misses");
    EXPECT_STREQ(counter_name(Cnt::kExpmSpectral), "linalg.expm.spectral");
}

}  // namespace
}  // namespace qoc::obs
