/// Lock-free latency-histogram correctness: bucket-boundary oracle (every
/// bucket's bounds round-trip through hist_bucket_index), value->bucket
/// placement for arbitrary values, quantile estimates against a
/// sorted-vector reference within bucket resolution, cross-thread merge
/// totals, the disabled-path no-op, and the ScopedHistTimer RAII recorder.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace qoc::obs {
namespace {

class ObsHistTest : public ::testing::Test {
protected:
    void SetUp() override { reset_for_testing(); }
    void TearDown() override { reset_for_testing(); }
};

/// Deterministic 64-bit LCG (Knuth MMIX) for value streams.
std::uint64_t lcg(std::uint64_t& state) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
}

TEST_F(ObsHistTest, SmallValuesAreExactBuckets) {
    for (std::uint64_t v = 0; v < 4; ++v) {
        EXPECT_EQ(hist_bucket_index(v), v);
        EXPECT_EQ(hist_bucket_lower(v), v);
        EXPECT_EQ(hist_bucket_upper(v), v + 1);
    }
}

TEST_F(ObsHistTest, BucketBoundaryOracleRoundTrips) {
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
        const std::uint64_t lo = hist_bucket_lower(b);
        const std::uint64_t hi = hist_bucket_upper(b);
        ASSERT_LT(lo, hi) << "bucket " << b;
        EXPECT_EQ(hist_bucket_index(lo), b) << "lower bound of bucket " << b;
        EXPECT_EQ(hist_bucket_index(hi - 1), b) << "last value of bucket " << b;
        if (b + 1 < kHistBuckets) {
            EXPECT_EQ(hist_bucket_upper(b), hist_bucket_lower(b + 1))
                << "buckets " << b << "/" << b + 1 << " must tile";
        }
    }
    EXPECT_EQ(hist_bucket_index(UINT64_MAX), kHistBuckets - 1);
}

TEST_F(ObsHistTest, BucketResolutionIsWithinQuarter) {
    // Log-linear layout contract: relative bucket width <= 1/4 for v >= 4
    // (i.e. at most ~2^(1/4) geometric resolution).
    for (std::size_t b = 4; b < kHistBuckets; ++b) {
        const double lo = static_cast<double>(hist_bucket_lower(b));
        const double hi = static_cast<double>(hist_bucket_upper(b));
        if (b == kHistBuckets - 1) continue;  // saturated upper bound
        EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << b;
    }
}

TEST_F(ObsHistTest, ArbitraryValuesLandInTheirBucket) {
    std::uint64_t state = 12345;
    for (int i = 0; i < 10000; ++i) {
        // Mix magnitudes: shift by a pseudo-random amount so small and huge
        // values are both exercised.
        const std::uint64_t v = lcg(state) >> (lcg(state) % 64);
        const std::size_t b = hist_bucket_index(v);
        ASSERT_LT(b, kHistBuckets);
        EXPECT_GE(v, hist_bucket_lower(b)) << "v=" << v;
        EXPECT_LT(v, hist_bucket_upper(b) == UINT64_MAX ? UINT64_MAX
                                                        : hist_bucket_upper(b))
            << "v=" << v;
    }
}

TEST_F(ObsHistTest, DisabledPathRecordsNothing) {
    hist_record(Hist::kDesignWall, 1234);
    ScopedHistTimer t(Hist::kIrbWall);
    const HistSnapshot s = hist_snapshot(Hist::kDesignWall);
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(hist_quantile(s, 0.5), 0.0);
}

TEST_F(ObsHistTest, SnapshotCountsAndSums) {
    enable_metrics("");
    hist_record(Hist::kPoolQueueWait, 1);
    hist_record(Hist::kPoolQueueWait, 100);
    hist_record(Hist::kPoolQueueWait, 100000);
    const HistSnapshot s = hist_snapshot(Hist::kPoolQueueWait);
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 100101u);
    // Other histograms are untouched.
    EXPECT_EQ(hist_snapshot(Hist::kDesignWall).count, 0u);
}

TEST_F(ObsHistTest, CrossThreadMergeTotals) {
    enable_metrics("");
    constexpr int kTeamSize = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> team;
    team.reserve(kTeamSize);
    for (int t = 0; t < kTeamSize; ++t) {
        team.emplace_back([t] {
            std::uint64_t state = 1000 + static_cast<std::uint64_t>(t);
            for (int i = 0; i < kPerThread; ++i) {
                hist_record(Hist::kDesignWall, lcg(state) % 1000000);
            }
        });
    }
    for (auto& th : team) th.join();
    const HistSnapshot s = hist_snapshot(Hist::kDesignWall);
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(kTeamSize) * kPerThread);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t n : s.buckets) bucket_total += n;
    EXPECT_EQ(bucket_total, s.count);
}

TEST_F(ObsHistTest, QuantilesMatchSortedReferenceWithinBucketResolution) {
    enable_metrics("");
    std::vector<std::uint64_t> values;
    std::uint64_t state = 777;
    for (int i = 0; i < 20000; ++i) {
        // Latency-shaped stream: mostly small, a heavy tail.
        const std::uint64_t v = (lcg(state) % 1000) + ((i % 97 == 0) ? 500000 : 0);
        values.push_back(v);
        hist_record(Hist::kIrbWall, v);
    }
    std::sort(values.begin(), values.end());
    const HistSnapshot s = hist_snapshot(Hist::kIrbWall);
    ASSERT_EQ(s.count, values.size());

    for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const double est = hist_quantile(s, q);
        const double pos = q * static_cast<double>(values.size() - 1);
        const std::uint64_t exact = values[static_cast<std::size_t>(pos)];
        // The estimate must land inside (or on the boundary of) the bucket
        // holding the exact-rank sample -- that is the advertised <=2^(1/4)
        // resolution contract.
        const std::size_t b = hist_bucket_index(exact);
        EXPECT_GE(est, static_cast<double>(hist_bucket_lower(b)))
            << "q=" << q << " exact=" << exact;
        EXPECT_LE(est, static_cast<double>(hist_bucket_upper(b)))
            << "q=" << q << " exact=" << exact;
    }
}

TEST_F(ObsHistTest, ScopedHistTimerRecordsOneObservation) {
    enable_metrics("");
    { ScopedHistTimer t(Hist::kDesignWall); }
    const HistSnapshot s = hist_snapshot(Hist::kDesignWall);
    EXPECT_EQ(s.count, 1u);
}

TEST_F(ObsHistTest, HistNamesAreStable) {
    EXPECT_STREQ(hist_name(Hist::kSvcLatHitInteractive),
                 "service.request.latency.interactive.hit");
    EXPECT_STREQ(hist_name(Hist::kSvcLatShedBatch),
                 "service.request.latency.batch.shed");
    EXPECT_STREQ(hist_name(Hist::kDesignWall), "design.wall");
    EXPECT_STREQ(hist_name(Hist::kIrbWall), "irb.wall");
    EXPECT_STREQ(hist_name(Hist::kPoolQueueWait), "pool.task.queue_wait");
    EXPECT_STREQ(hist_name(Hist::kLbfgsbLineSearchEvals), "lbfgsb.line_search_evals");
}

}  // namespace
}  // namespace qoc::obs
