/// Observability must not perturb the numerics: with tracing, metrics and
/// telemetry all enabled, GRAPE pulses and RB survival curves must be
/// BIT-identical to the instrumentation-off run.  Guards the obs design
/// rule that spans/counters only read values the engines already computed
/// and never synchronize or reorder the compute threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "control/grape.hpp"
#include "device/calibration.hpp"
#include "obs/obs.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "rb/rb.hpp"

namespace qoc {
namespace {

/// Scoped obs activation writing to throwaway temp files.
class ObsOnScope {
public:
    ObsOnScope() {
        obs::reset_for_testing();
        trace_path_ = ::testing::TempDir() + "qoc_obs_det_trace.json";
        metrics_path_ = ::testing::TempDir() + "qoc_obs_det_metrics.jsonl";
        obs::enable_tracing(trace_path_);
        obs::enable_metrics(metrics_path_);
    }
    ~ObsOnScope() {
        obs::reset_for_testing();
        std::remove(trace_path_.c_str());
        std::remove(metrics_path_.c_str());
    }

private:
    std::string trace_path_, metrics_path_;
};

control::GrapeProblem transmon_problem(std::size_t n_ts) {
    control::GrapeProblem p;
    p.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    p.target = quantum::gates::x();
    p.subspace_isometry = quantum::qubit_isometry(3);
    p.n_timeslots = n_ts;
    p.evo_time = static_cast<double>(n_ts) * 0.25;
    p.fidelity = control::FidelityType::kPsu;
    p.initial_amps.resize(n_ts);
    for (std::size_t k = 0; k < n_ts; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(n_ts);
        p.initial_amps[k] = {0.3 * t, 0.2 * (1.0 - t)};
    }
    return p;
}

void expect_amps_bitwise_equal(const control::ControlAmplitudes& a,
                               const control::ControlAmplitudes& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        ASSERT_EQ(a[k].size(), b[k].size());
        for (std::size_t j = 0; j < a[k].size(); ++j) {
            EXPECT_EQ(a[k][j], b[k][j]) << "k=" << k << " j=" << j;  // bitwise
        }
    }
}

TEST(ObsDeterminism, GrapeBitIdenticalWithObsOn) {
    const control::GrapeProblem p = transmon_problem(16);
    optim::LbfgsBOptions opts;
    opts.max_iterations = 12;

    obs::reset_for_testing();
    const control::GrapeResult off = control::grape_unitary(p, opts);

    control::GrapeResult on;
    {
        ObsOnScope scope;
        on = control::grape_unitary(p, opts);
    }

    EXPECT_EQ(off.final_fid_err, on.final_fid_err);
    expect_amps_bitwise_equal(off.final_amps, on.final_amps);
    ASSERT_EQ(off.fid_err_history.size(), on.fid_err_history.size());
    for (std::size_t i = 0; i < off.fid_err_history.size(); ++i) {
        EXPECT_EQ(off.fid_err_history[i], on.fid_err_history[i]) << "i=" << i;
    }
    // The telemetry records mirror the history exactly.
    ASSERT_EQ(on.iteration_records.size(), on.fid_err_history.size());
    for (std::size_t i = 0; i < on.iteration_records.size(); ++i) {
        EXPECT_EQ(on.iteration_records[i].cost, on.fid_err_history[i]) << "i=" << i;
    }
}

TEST(ObsDeterminism, Rb1qBitIdenticalWithObsOn) {
    device::PulseExecutor exec{device::ibmq_montreal()};
    const pulse::InstructionScheduleMap defaults = device::build_default_gates(exec);
    const rb::Clifford1Q c1;
    const rb::GateSet1Q gates(exec, defaults, 0, c1);
    rb::RbOptions opts;
    opts.lengths = {1, 16, 32};
    opts.seeds_per_length = 4;
    opts.shots = 1024;

    obs::reset_for_testing();
    const rb::RbCurve off = rb::run_rb_1q(exec, gates, 0, opts);

    rb::RbCurve on;
    {
        ObsOnScope scope;
        on = rb::run_rb_1q(exec, gates, 0, opts);
    }

    ASSERT_EQ(off.points.size(), on.points.size());
    for (std::size_t i = 0; i < off.points.size(); ++i) {
        EXPECT_EQ(off.points[i].mean_survival, on.points[i].mean_survival) << "i=" << i;
        EXPECT_EQ(off.points[i].sem, on.points[i].sem) << "i=" << i;
    }
    EXPECT_EQ(off.alpha, on.alpha);
    EXPECT_EQ(off.epc, on.epc);
}

}  // namespace
}  // namespace qoc
