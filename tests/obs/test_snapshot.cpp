/// Snapshotter behavior: counter-delta encoding across consecutive
/// snapshots, gauge-source sampling, latency-quantile summaries, the
/// telemetry-off no-op, and the background thread's start/stop lifecycle.

#include "obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace qoc::obs {
namespace {

class SnapshotTest : public ::testing::Test {
protected:
    void SetUp() override { reset_for_testing(); }
    void TearDown() override { reset_for_testing(); }
};

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
}

TEST_F(SnapshotTest, NoOpWithoutTelemetry) {
    Snapshotter snap(0);
    snap.snapshot_now();
    EXPECT_EQ(snap.snapshots_emitted(), 0u);

    enable_metrics("");  // metrics in memory, but no JSONL stream
    snap.snapshot_now();
    EXPECT_EQ(snap.snapshots_emitted(), 0u);
}

TEST_F(SnapshotTest, CounterDeltasAndGaugesPerSnapshot) {
    const std::string path = ::testing::TempDir() + "qoc_obs_snapshots.jsonl";
    enable_metrics(path);
    ASSERT_TRUE(telemetry_enabled());

    Snapshotter snap(0);
    double sampled = 1.5;
    snap.add_source([&sampled] { set_gauge("test.sampled", sampled); });

    count(Cnt::kGemmCalls, 5);
    hist_record(Hist::kDesignWall, 1000);
    snap.snapshot_now();

    count(Cnt::kGemmCalls, 3);
    sampled = 2.5;
    snap.snapshot_now();

    snap.snapshot_now();  // no activity in between: empty counter object
    EXPECT_EQ(snap.snapshots_emitted(), 3u);
    flush();

    const auto lines = read_lines(path);
    ASSERT_GE(lines.size(), 4u);  // 3 snapshots + final metrics line
    // First snapshot: totals ARE the deltas.
    EXPECT_NE(lines[0].find("\"type\":\"snapshot\",\"seq\":0"), std::string::npos);
    EXPECT_NE(lines[0].find("\"linalg.gemm.calls\":5"), std::string::npos) << lines[0];
    EXPECT_NE(lines[0].find("\"design.wall\":{\"count\":1"), std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("\"test.sampled\":1.5"), std::string::npos) << lines[0];
    // Second: only the increment since the first, and the re-sampled gauge.
    EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"linalg.gemm.calls\":3"), std::string::npos) << lines[1];
    EXPECT_NE(lines[1].find("\"test.sampled\":2.5"), std::string::npos) << lines[1];
    // Third: zero deltas are omitted entirely.
    EXPECT_NE(lines[2].find("\"seq\":2"), std::string::npos);
    EXPECT_NE(lines[2].find("\"counters\":{}"), std::string::npos) << lines[2];
    std::remove(path.c_str());
}

TEST_F(SnapshotTest, BackgroundThreadEmitsAndStops) {
    const std::string path = ::testing::TempDir() + "qoc_obs_snapshot_thread.jsonl";
    enable_metrics(path);
    ASSERT_TRUE(telemetry_enabled());

    {
        Snapshotter snap(2);  // 2 ms period
        snap.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        snap.stop();
        // stop() emits one final snapshot, so even a short run captures its
        // end state.
        EXPECT_GE(snap.snapshots_emitted(), 1u);
        snap.stop();  // idempotent
        const std::uint64_t after_stop = snap.snapshots_emitted();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_EQ(snap.snapshots_emitted(), after_stop);  // thread is gone
    }
    flush();

    std::size_t snapshot_lines = 0;
    for (const auto& line : read_lines(path)) {
        if (line.find("\"type\":\"snapshot\"") != std::string::npos) ++snapshot_lines;
    }
    EXPECT_GE(snapshot_lines, 1u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace qoc::obs
