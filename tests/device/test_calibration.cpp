#include "device/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::device {
namespace {

TEST(Rabi, RecoversPiAmplitude) {
    // On a clean device the pi amplitude must satisfy
    // amp * Omega_max * gaussian_area = pi (small DRAG corrections aside).
    BackendConfig cfg = ibmq_montreal();
    for (auto& q : cfg.qubits) {
        q.t1 = 1e9;
        q.t2 = 1e9;
        q.readout_p01 = 0.0;
        q.readout_p10 = 0.0;
    }
    PulseExecutor exec(cfg);
    RabiOptions opts;
    opts.shots = 100000;  // nearly noise-free calibration
    const auto rabi = rabi_calibrate(exec, 0, opts);

    const double area = 0.25 * 160 * cfg.dt * std::sqrt(2.0 * M_PI);  // sigma*sqrt(2pi)
    const double expected = M_PI / (cfg.qubit(0).omega_max * area);
    EXPECT_NEAR(rabi.pi_amplitude, expected, 0.05 * expected);
}

TEST(Rabi, TracksAmplitudeScaleDrift) {
    // If the device applies 5% more drive than commanded, the calibrated
    // amplitude must come out ~5% lower -- that is the point of daily
    // recalibration.
    BackendConfig cfg = ibmq_montreal();
    PulseExecutor nominal_exec(cfg);
    const double amp_nominal = rabi_calibrate(nominal_exec, 0).pi_amplitude;

    cfg.qubits[0].amp_scale = 1.05;
    PulseExecutor drifted_exec(cfg);
    const double amp_drifted = rabi_calibrate(drifted_exec, 0).pi_amplitude;
    EXPECT_NEAR(amp_drifted / amp_nominal, 1.0 / 1.05, 0.01);
}

TEST(Rabi, SweepDataExposed) {
    PulseExecutor exec(ibmq_montreal());
    const auto rabi = rabi_calibrate(exec, 0);
    EXPECT_EQ(rabi.sweep_amps.size(), rabi.sweep_p1.size());
    EXPECT_GT(rabi.sweep_amps.size(), 10u);
    // P1 starts near 0 at tiny amplitude.
    EXPECT_LT(rabi.sweep_p1.front(), 0.2);
}

TEST(DefaultGates, MapContainsBasisGates) {
    PulseExecutor exec(ibmq_montreal());
    const auto map = build_default_gates(exec);
    EXPECT_TRUE(map.has("x", {0}));
    EXPECT_TRUE(map.has("sx", {0}));
    EXPECT_TRUE(map.has("x", {1}));
    EXPECT_TRUE(map.has("cx", {0, 1}));
    EXPECT_FALSE(map.has("cx", {1, 0}));
}

TEST(DefaultGates, XPreparesExcitedState) {
    PulseExecutor exec(ibmq_montreal());
    const auto map = build_default_gates(exec);
    const Mat sup = exec.schedule_superop_1q(map.get("x", {0}), 0);
    const Mat rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_GT(rho(1, 1).real(), 0.995);
}

TEST(DefaultGates, SxPreparesEqualSuperposition) {
    PulseExecutor exec(ibmq_montreal());
    const auto map = build_default_gates(exec);
    const Mat sup = exec.schedule_superop_1q(map.get("sx", {0}), 0);
    const Mat rho = quantum::apply_superop(sup, exec.ground_state_1q());
    // The default sx deliberately carries a few-percent amplitude error
    // (see DefaultGateOptions::sx_amp_relative_error).
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 0.06);
    EXPECT_NEAR(rho(1, 1).real(), 0.5, 0.06);
}

TEST(DefaultGates, DragBetaPositiveForNegativeAnharmonicity) {
    const auto cfg = ibmq_montreal();
    const double beta = default_drag_beta(cfg, 0, 160);
    EXPECT_GT(beta, 0.0);
    EXPECT_LT(beta, 0.2);
    // Shorter pulses need proportionally larger beta.
    EXPECT_GT(default_drag_beta(cfg, 0, 80), beta);
}

TEST(DefaultGates, DefaultDurationMatchesIbm) {
    PulseExecutor exec(ibmq_montreal());
    const auto map = build_default_gates(exec);
    EXPECT_EQ(map.get("x", {0}).total_duration(), 160u);  // 160 dt ~ 35.5 ns
}

}  // namespace
}  // namespace qoc::device
