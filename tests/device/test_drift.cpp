#include "device/drift_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qoc::device {
namespace {

TEST(Backends, PaperParameters) {
    const auto montreal = ibmq_montreal();
    EXPECT_EQ(montreal.name, "ibmq_montreal");
    EXPECT_NEAR(montreal.qubit(0).frequency_ghz, 4.911, 1e-9);
    // The paper's device-average T1 values are kept for reporting; qubit 0
    // itself is modeled as a better-than-average qubit.
    EXPECT_NEAR(montreal.device_average_t1_us, 86.76, 1e-9);
    EXPECT_GT(montreal.qubit(0).t1, 1000.0 * montreal.device_average_t1_us);

    const auto toronto = ibmq_toronto();
    EXPECT_NEAR(toronto.qubit(0).frequency_ghz, 5.225, 1e-9);
    EXPECT_NEAR(toronto.device_average_t1_us, 83.52, 1e-9);
    EXPECT_GT(toronto.qubit(0).t1, 1000.0 * toronto.device_average_t1_us);

    EXPECT_NEAR(montreal.dt, 2.0 / 9.0, 1e-15);
    EXPECT_EQ(montreal.levels, 3u);
}

TEST(Backends, NominalModelStripsImperfections) {
    auto dev = ibmq_montreal();
    dev.qubits[0].detuning = 0.01;
    dev.qubits[0].amp_scale = 1.05;
    const auto nominal = nominal_model(dev);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).detuning, 0.0);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).amp_scale, 1.0);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).t1, dev.qubit(0).t1);
}

TEST(Drift, Deterministic) {
    DriftModel m(ibmq_montreal(), 99);
    const auto a = m.device_on_day(3);
    const auto b = m.device_on_day(3);
    EXPECT_DOUBLE_EQ(a.qubit(0).detuning, b.qubit(0).detuning);
    EXPECT_DOUBLE_EQ(a.qubit(0).amp_scale, b.qubit(0).amp_scale);
}

TEST(Drift, DifferentDaysDiffer) {
    DriftModel m(ibmq_montreal(), 99);
    const auto d0 = m.device_on_day(0);
    const auto d1 = m.device_on_day(1);
    EXPECT_NE(d0.qubit(0).detuning, d1.qubit(0).detuning);
}

TEST(Drift, NegativeDayIsNominal) {
    DriftModel m(ibmq_montreal(), 5);
    const auto d = m.device_on_day(-1);
    EXPECT_DOUBLE_EQ(d.qubit(0).detuning, 0.0);
    EXPECT_DOUBLE_EQ(d.qubit(0).amp_scale, 1.0);
}

TEST(Drift, MagnitudesPhysical) {
    DriftModel m(ibmq_montreal(), 2024);
    for (int day = 0; day < 30; ++day) {
        const auto d = m.device_on_day(day);
        for (const auto& q : d.qubits) {
            EXPECT_LT(std::abs(q.detuning), 0.02) << "day " << day;     // < ~3 MHz
            EXPECT_GT(q.amp_scale, 0.8);
            EXPECT_LT(q.amp_scale, 1.25);
            EXPECT_GT(q.t1, 10'000.0);
            EXPECT_LE(q.t2, 2.0 * q.t1 + 1e-9);
            EXPECT_GE(q.readout_p01, 1e-4);
            EXPECT_LE(q.readout_p01, 0.3);
        }
    }
}

TEST(Drift, JumpDaysExist) {
    DriftModel m(ibmq_montreal(), 7);
    int jumps = 0;
    for (int day = 0; day < 60; ++day) jumps += m.is_jump_day(day);
    EXPECT_GT(jumps, 0);
    EXPECT_LT(jumps, 30);
}

TEST(Drift, CorrelatedAcrossDays) {
    // Mean-reverting walk: the day-to-day change should usually be smaller
    // than the overall spread (correlation > 0).
    DriftModel m(ibmq_montreal(), 31);
    std::vector<double> det;
    for (int day = 0; day < 40; ++day) det.push_back(m.device_on_day(day).qubit(0).detuning);
    double var = 0.0, dvar = 0.0, mean = 0.0;
    for (double v : det) mean += v;
    mean /= static_cast<double>(det.size());
    for (std::size_t i = 0; i < det.size(); ++i) {
        var += (det[i] - mean) * (det[i] - mean);
        if (i > 0) dvar += (det[i] - det[i - 1]) * (det[i] - det[i - 1]);
    }
    var /= static_cast<double>(det.size());
    dvar /= static_cast<double>(det.size() - 1);
    // For an AR(1) with coefficient a: E[(x_t - x_{t-1})^2] = 2(1-a) var.
    // With a = 0.6 that's 0.8 var < 2 var (i.i.d. would give 2 var).
    EXPECT_LT(dvar, 1.6 * var);
}

}  // namespace
}  // namespace qoc::device
