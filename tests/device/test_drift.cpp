#include "device/drift_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qoc::device {
namespace {

TEST(Backends, PaperParameters) {
    const auto montreal = ibmq_montreal();
    EXPECT_EQ(montreal.name, "ibmq_montreal");
    EXPECT_NEAR(montreal.qubit(0).frequency_ghz, 4.911, 1e-9);
    // The paper's device-average T1 values are kept for reporting; qubit 0
    // itself is modeled as a better-than-average qubit.
    EXPECT_NEAR(montreal.device_average_t1_us, 86.76, 1e-9);
    EXPECT_GT(montreal.qubit(0).t1, 1000.0 * montreal.device_average_t1_us);

    const auto toronto = ibmq_toronto();
    EXPECT_NEAR(toronto.qubit(0).frequency_ghz, 5.225, 1e-9);
    EXPECT_NEAR(toronto.device_average_t1_us, 83.52, 1e-9);
    EXPECT_GT(toronto.qubit(0).t1, 1000.0 * toronto.device_average_t1_us);

    EXPECT_NEAR(montreal.dt, 2.0 / 9.0, 1e-15);
    EXPECT_EQ(montreal.levels, 3u);
}

TEST(Backends, NominalModelStripsImperfections) {
    auto dev = ibmq_montreal();
    dev.qubits[0].detuning = 0.01;
    dev.qubits[0].amp_scale = 1.05;
    const auto nominal = nominal_model(dev);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).detuning, 0.0);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).amp_scale, 1.0);
    EXPECT_DOUBLE_EQ(nominal.qubit(0).t1, dev.qubit(0).t1);
}

TEST(Drift, Deterministic) {
    DriftModel m(ibmq_montreal(), 99);
    const auto a = m.device_on_day(3);
    const auto b = m.device_on_day(3);
    EXPECT_DOUBLE_EQ(a.qubit(0).detuning, b.qubit(0).detuning);
    EXPECT_DOUBLE_EQ(a.qubit(0).amp_scale, b.qubit(0).amp_scale);
}

TEST(Drift, DifferentDaysDiffer) {
    DriftModel m(ibmq_montreal(), 99);
    const auto d0 = m.device_on_day(0);
    const auto d1 = m.device_on_day(1);
    EXPECT_NE(d0.qubit(0).detuning, d1.qubit(0).detuning);
}

TEST(Drift, NegativeDayIsNominal) {
    DriftModel m(ibmq_montreal(), 5);
    const auto d = m.device_on_day(-1);
    EXPECT_DOUBLE_EQ(d.qubit(0).detuning, 0.0);
    EXPECT_DOUBLE_EQ(d.qubit(0).amp_scale, 1.0);
}

TEST(Drift, MagnitudesPhysical) {
    DriftModel m(ibmq_montreal(), 2024);
    for (int day = 0; day < 30; ++day) {
        const auto d = m.device_on_day(day);
        for (const auto& q : d.qubits) {
            EXPECT_LT(std::abs(q.detuning), 0.02) << "day " << day;     // < ~3 MHz
            EXPECT_GT(q.amp_scale, 0.8);
            EXPECT_LT(q.amp_scale, 1.25);
            EXPECT_GT(q.t1, 10'000.0);
            EXPECT_LE(q.t2, 2.0 * q.t1 + 1e-9);
            EXPECT_GE(q.readout_p01, 1e-4);
            EXPECT_LE(q.readout_p01, 0.3);
        }
    }
}

TEST(Drift, JumpDaysExist) {
    DriftModel m(ibmq_montreal(), 7);
    int jumps = 0;
    for (int day = 0; day < 60; ++day) jumps += m.is_jump_day(day);
    EXPECT_GT(jumps, 0);
    EXPECT_LT(jumps, 30);
}

TEST(Drift, CorrelatedAcrossDays) {
    // Mean-reverting walk: the day-to-day change should usually be smaller
    // than the overall spread (correlation > 0).
    DriftModel m(ibmq_montreal(), 31);
    std::vector<double> det;
    for (int day = 0; day < 40; ++day) det.push_back(m.device_on_day(day).qubit(0).detuning);
    double var = 0.0, dvar = 0.0, mean = 0.0;
    for (double v : det) mean += v;
    mean /= static_cast<double>(det.size());
    for (std::size_t i = 0; i < det.size(); ++i) {
        var += (det[i] - mean) * (det[i] - mean);
        if (i > 0) dvar += (det[i] - det[i - 1]) * (det[i] - det[i - 1]);
    }
    var /= static_cast<double>(det.size());
    dvar /= static_cast<double>(det.size() - 1);
    // For an AR(1) with coefficient a: E[(x_t - x_{t-1})^2] = 2(1-a) var.
    // With a = 0.6 that's 0.8 var < 2 var (i.i.d. would give 2 var).
    EXPECT_LT(dvar, 1.6 * var);
}

TEST(Drift, SeedDayReproducibleAcrossInstancesAndCallOrder) {
    // (seed, day) fully determines the snapshot: independent instances and
    // arbitrary call interleavings must agree bitwise (the calibration
    // service's replay contract leans on this).
    const DriftModel a(ibmq_montreal(), 424242);
    const DriftModel b(ibmq_montreal(), 424242);
    const auto d7_first = a.device_on_day(7);
    (void)a.device_on_day(3);  // interleave another day
    const auto d7_again = a.device_on_day(7);
    const auto d7_other = b.device_on_day(7);
    for (std::size_t q = 0; q < d7_first.qubits.size(); ++q) {
        const auto& x = d7_first.qubit(q);
        for (const auto* y : {&d7_again.qubit(q), &d7_other.qubit(q)}) {
            EXPECT_EQ(x.detuning, y->detuning);
            EXPECT_EQ(x.amp_scale, y->amp_scale);
            EXPECT_EQ(x.t1, y->t1);
            EXPECT_EQ(x.t2, y->t2);
            EXPECT_EQ(x.readout_p10, y->readout_p10);
            EXPECT_EQ(x.readout_p01, y->readout_p01);
        }
    }
    // Different seeds give different trajectories.
    const DriftModel c(ibmq_montreal(), 424243);
    EXPECT_NE(d7_first.qubit(0).detuning, c.device_on_day(7).qubit(0).detuning);
}

TEST(Drift, JumpDayFlagConsistentWithKickMagnitude) {
    // is_jump_day mirrors the qubit-0 draw sequence of device_on_day: the
    // AR(1) innovation detuning(d) - a * detuning(d-1) is drawn with a
    // jump_scale-times larger sigma on flagged days.  Over many days the
    // flagged-day innovations must be much larger on average.
    const DriftOptions opts;  // defaults: jump_scale = 6
    const DriftModel m(ibmq_montreal(), 1234, opts);
    double prev = 0.0;
    double jump_sum = 0.0, normal_sum = 0.0;
    int jump_n = 0, normal_n = 0;
    for (int day = 0; day < 200; ++day) {
        const double det = m.device_on_day(day).qubit(0).detuning;
        const double innovation = std::abs(det - opts.mean_reversion * prev);
        EXPECT_EQ(m.is_jump_day(day), m.is_jump_day(day));  // stable flag
        if (m.is_jump_day(day)) {
            jump_sum += innovation;
            ++jump_n;
        } else {
            normal_sum += innovation;
            ++normal_n;
        }
        prev = det;
    }
    ASSERT_GT(jump_n, 0);
    ASSERT_GT(normal_n, 0);
    EXPECT_GT(jump_sum / jump_n, 2.0 * (normal_sum / normal_n));
}

TEST(Drift, MeanReversionKeepsParametersBoundedOverTenThousandDays) {
    // The walk is mean-reverting and clamped; even 10k days out every
    // parameter must stay inside its physical excursion band.  (Sampled on a
    // coarse grid plus endpoints: device_on_day(d) replays from day 0, so
    // probing all 10k days would be quadratic.)
    const auto base = ibmq_montreal();
    const DriftModel m(base, 77);
    std::vector<int> days = {0, 1, 2, 9998, 9999};
    for (int d = 100; d < 10'000; d += 250) days.push_back(d);
    for (const int day : days) {
        const auto dev = m.device_on_day(day);
        for (std::size_t q = 0; q < dev.qubits.size(); ++q) {
            const auto& p = dev.qubit(q);
            const auto& n = base.qubit(q);
            EXPECT_LE(std::abs(p.detuning), 6e-3) << "day " << day;
            EXPECT_GE(p.amp_scale, std::exp(-0.06) - 1e-12) << "day " << day;
            EXPECT_LE(p.amp_scale, std::exp(0.06) + 1e-12) << "day " << day;
            EXPECT_GE(p.t1, n.t1 * std::exp(-0.4) - 1e-9) << "day " << day;
            EXPECT_LE(p.t1, n.t1 * std::exp(0.4) + 1e-9) << "day " << day;
            EXPECT_LE(p.t2, 2.0 * p.t1 + 1e-9) << "day " << day;
            EXPECT_GE(p.readout_p10, 1e-4) << "day " << day;
            EXPECT_LE(p.readout_p10, 0.3) << "day " << day;
        }
    }
}

}  // namespace
}  // namespace qoc::device
