/// Property sweeps over the pulse executor: virtual-Z algebra, propagator
/// caching equivalence, measurement statistics, and schedule edge cases.

#include <gtest/gtest.h>

#include <numbers>

#include "device/calibration.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::device {
namespace {

namespace g = quantum::gates;

class ExecutorProperty : public ::testing::Test {
protected:
    static PulseExecutor& exec() {
        static PulseExecutor instance{ibmq_montreal()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = build_default_gates(exec());
        return map;
    }
};

TEST_F(ExecutorProperty, RzSuperopsFormAGroup) {
    // rz(a) rz(b) = rz(a+b); rz(2 pi k) = identity (n-hat convention gives
    // exact 2 pi periodicity on the superoperator).
    for (double a : {0.3, 1.1, -2.0}) {
        for (double b : {0.5, -0.9}) {
            const Mat lhs = exec().rz_superop_1q(a) * exec().rz_superop_1q(b);
            const Mat rhs = exec().rz_superop_1q(a + b);
            EXPECT_TRUE(lhs.approx_equal(rhs, 1e-12));
        }
    }
    EXPECT_TRUE(exec().rz_superop_1q(2.0 * std::numbers::pi)
                    .approx_equal(Mat::identity(9), 1e-12));
}

TEST_F(ExecutorProperty, WaveformSuperopCachingConsistent) {
    // A pulse with long constant plateaus exercises the propagator cache;
    // splitting the same samples into two calls must compose identically.
    std::vector<std::complex<double>> samples(300, {0.1, 0.02});
    for (std::size_t k = 100; k < 200; ++k) samples[k] = {0.05, 0.0};
    const Mat whole = exec().waveform_superop_1q(samples, 0);
    const std::vector<std::complex<double>> first(samples.begin(), samples.begin() + 137);
    const std::vector<std::complex<double>> rest(samples.begin() + 137, samples.end());
    const Mat split = exec().waveform_superop_1q(rest, 0) * exec().waveform_superop_1q(first, 0);
    EXPECT_TRUE(whole.approx_equal(split, 1e-11));
}

TEST_F(ExecutorProperty, IdleSuperopComposes) {
    const Mat two_short = exec().idle_superop_1q(700, 0) * exec().idle_superop_1q(300, 0);
    const Mat one_long = exec().idle_superop_1q(1000, 0);
    EXPECT_TRUE(two_short.approx_equal(one_long, 1e-11));
}

TEST_F(ExecutorProperty, AllGateSuperopsTracePreserving) {
    for (const char* name : {"x", "sx"}) {
        const Mat sup = exec().schedule_superop_1q(defaults().get(name, {0}), 0);
        EXPECT_TRUE(quantum::is_trace_preserving(sup, 1e-8)) << name;
    }
    const Mat cx = exec().schedule_superop_2q(defaults().get("cx", {0, 1}));
    EXPECT_TRUE(quantum::is_trace_preserving(cx, 1e-8));
}

TEST_F(ExecutorProperty, GateSuperopsMapStatesToStates) {
    const Mat sup = exec().schedule_superop_1q(defaults().get("sx", {0}), 0);
    Mat rho = exec().ground_state_1q();
    for (int reps = 0; reps < 8; ++reps) {
        rho = quantum::apply_superop(sup, rho);
        ASSERT_TRUE(quantum::is_density_matrix(rho, 1e-8)) << "rep " << reps;
    }
}

TEST_F(ExecutorProperty, MeasurementStatisticsBinomial) {
    // Shot histograms across seeds must scatter around the analytic
    // probability with ~sqrt(p(1-p)/N) spread.
    pulse::QuantumCircuit qc(1);
    qc.sx(0);
    const Mat rho = simulate_circuit_1q(exec(), qc, defaults(), 0);
    const double p1 = exec().p1_after_readout(rho, 0);
    const int shots = 4096;
    double mean = 0.0, var = 0.0;
    const int trials = 40;
    std::vector<double> vals(trials);
    for (int t = 0; t < trials; ++t) {
        vals[t] = exec().measure_1q(rho, 0, shots, 1000 + t).probability("1");
        mean += vals[t];
    }
    mean /= trials;
    for (double v : vals) var += (v - mean) * (v - mean);
    var /= (trials - 1);
    EXPECT_NEAR(mean, p1, 4.0 * std::sqrt(p1 * (1 - p1) / shots / trials));
    const double expected_var = p1 * (1 - p1) / shots;
    EXPECT_GT(var, 0.3 * expected_var);
    EXPECT_LT(var, 3.0 * expected_var);
}

TEST_F(ExecutorProperty, TwoQubitMeasureMarginalsConsistent) {
    pulse::QuantumCircuit qc(2);
    qc.x(0);
    const Mat rho = simulate_circuit_2q(exec(), qc, defaults());
    const Counts c = exec().measure_2q(rho, 1 << 15, 5);
    // Qubit 0 in |1>, qubit 1 in |0> (up to readout error).
    const double p_q0_one = c.probability("10") + c.probability("11");
    const double p_q1_one = c.probability("01") + c.probability("11");
    EXPECT_GT(p_q0_one, 0.9);
    EXPECT_LT(p_q1_one, 0.1);
}

TEST_F(ExecutorProperty, EmptyScheduleIsIdentity) {
    pulse::Schedule empty("nothing");
    const Mat sup = exec().schedule_superop_1q(empty, 0);
    EXPECT_TRUE(sup.approx_equal(Mat::identity(9), 1e-12));
}

TEST_F(ExecutorProperty, PureShiftPhaseScheduleIsVirtualZ) {
    pulse::Schedule sp("rz_only");
    sp.insert(0, pulse::ShiftPhase{-0.8, pulse::drive_channel(0)});  // rz(+0.8)
    const Mat sup = exec().schedule_superop_1q(sp, 0);
    EXPECT_TRUE(sup.approx_equal(exec().rz_superop_1q(0.8), 1e-12));
}

}  // namespace
}  // namespace qoc::device
