#include "device/characterization.hpp"

#include <gtest/gtest.h>

namespace qoc::device {
namespace {

class CharacterizationTest : public ::testing::Test {
protected:
    static PulseExecutor& exec() {
        static PulseExecutor instance{ibmq_montreal()};
        return instance;
    }
    static const pulse::InstructionScheduleMap& defaults() {
        static pulse::InstructionScheduleMap map = build_default_gates(exec());
        return map;
    }
};

TEST_F(CharacterizationTest, T1RecoversConfiguredValue) {
    CharacterizationOptions opts;
    opts.max_delay_ns = 3.0 * exec().config().qubit(0).t1;
    opts.shots = 16384;
    const DecayFit fit = measure_t1(exec(), defaults(), 0, opts);
    const double truth = exec().config().qubit(0).t1;
    EXPECT_NEAR(fit.value, truth, 0.1 * truth);
    EXPECT_EQ(fit.delays_ns.size(), opts.n_points);
    // P(1) decays along the sweep.
    EXPECT_GT(fit.probabilities.front(), fit.probabilities.back());
}

TEST_F(CharacterizationTest, RamseyRecoversT2AndDetuning) {
    CharacterizationOptions opts;
    opts.max_delay_ns = 1.5 * exec().config().qubit(0).t2;
    opts.n_points = 150;
    opts.shots = 16384;
    const double artificial = 2.0 * M_PI * 5.0e-5;  // ~50 kHz Ramsey fringe
    double fitted_detuning = 0.0;
    const DecayFit fit =
        measure_t2_ramsey(exec(), defaults(), 0, artificial, &fitted_detuning, opts);
    const double truth = exec().config().qubit(0).t2;
    EXPECT_NEAR(fit.value, truth, 0.25 * truth);
    EXPECT_NEAR(fitted_detuning, artificial, 0.05 * artificial);
}

TEST_F(CharacterizationTest, RamseySeesDeviceDetuningDrift) {
    // A drifted qubit frequency shows up as a shifted Ramsey fringe -- the
    // signal IBM's daily frequency calibration consumes.
    BackendConfig cfg = ibmq_montreal();
    const double drift_detuning = 2.0 * M_PI * 3.0e-5;
    cfg.qubits[0].detuning = drift_detuning;
    PulseExecutor dev(cfg);
    const auto defs = build_default_gates(dev);

    CharacterizationOptions opts;
    // Sample well above the fringe Nyquist rate: ~100 us window, 120 points.
    opts.max_delay_ns = 100'000.0;
    opts.n_points = 120;
    opts.shots = 16384;
    const double artificial = 2.0 * M_PI * 8.0e-5;
    double fitted = 0.0;
    measure_t2_ramsey(dev, defs, 0, artificial, &fitted, opts);
    // The physical detuning shifts the fringe frequency away from the
    // artificial ramp by exactly its magnitude (sign set by the frame
    // convention; the shift is what the daily calibration extracts).
    EXPECT_NEAR(std::abs(std::abs(fitted) - artificial), drift_detuning,
                0.2 * drift_detuning);
}

TEST_F(CharacterizationTest, EchoRemovesStaticDetuning) {
    // With a static detuning the Ramsey fringe oscillates but the echo decay
    // is smooth and still yields ~T2.
    BackendConfig cfg = ibmq_montreal();
    cfg.qubits[0].detuning = 2.0 * M_PI * 5.0e-5;
    PulseExecutor dev(cfg);
    const auto defs = build_default_gates(dev);

    CharacterizationOptions opts;
    opts.max_delay_ns = 2.0 * cfg.qubit(0).t2;
    opts.shots = 16384;
    const DecayFit fit = measure_t2_echo(dev, defs, 0, opts);
    EXPECT_NEAR(fit.value, cfg.qubit(0).t2, 0.3 * cfg.qubit(0).t2);
}

TEST_F(CharacterizationTest, T1TracksDrift) {
    // A device whose T1 halved must measure accordingly.
    BackendConfig cfg = ibmq_montreal();
    cfg.qubits[0].t1 *= 0.5;
    cfg.qubits[0].t2 = std::min(cfg.qubits[0].t2, 2.0 * cfg.qubits[0].t1);
    PulseExecutor dev(cfg);
    const auto defs = build_default_gates(dev);
    CharacterizationOptions opts;
    opts.max_delay_ns = 3.0 * cfg.qubit(0).t1;
    opts.shots = 16384;
    const DecayFit fit = measure_t1(dev, defs, 0, opts);
    EXPECT_NEAR(fit.value, cfg.qubit(0).t1, 0.12 * cfg.qubit(0).t1);
}

}  // namespace
}  // namespace qoc::device
