#include "device/executor.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "device/calibration.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::device {
namespace {

using pulse::drag_waveform;
using pulse::drive_channel;
using pulse::Play;
using pulse::Schedule;
using pulse::ShiftPhase;

/// A clean device: no drift, generous coherence for unit-test determinism.
BackendConfig clean_device() {
    BackendConfig b = ibmq_montreal();
    for (auto& q : b.qubits) {
        q.t1 = 1e9;  // effectively closed system
        q.t2 = 1e9;
        q.readout_p01 = 0.0;
        q.readout_p10 = 0.0;
    }
    b.cr.zz_static = 0.0;
    b.cr.classical_crosstalk = 0.0;
    return b;
}

TEST(Executor, IdleGroundStateStaysPut) {
    PulseExecutor exec(ibmq_montreal());
    const Mat sup = exec.idle_superop_1q(1000, 0);
    const Mat rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_NEAR(rho(0, 0).real(), 1.0, 1e-9);
}

TEST(Executor, ExcitedStateDecaysAtT1) {
    BackendConfig cfg = ibmq_montreal();
    PulseExecutor exec(cfg);
    const std::size_t n_dt = 45000;  // 10 us
    const double t = n_dt * cfg.dt;
    const Mat sup = exec.idle_superop_1q(n_dt, 0);
    Mat rho1(cfg.levels, cfg.levels);
    rho1(1, 1) = 1.0;
    const Mat rho = quantum::apply_superop(sup, rho1);
    EXPECT_NEAR(rho(1, 1).real(), std::exp(-t / cfg.qubit(0).t1), 1e-6);
}

TEST(Executor, CoherenceDecaysAtT2) {
    BackendConfig cfg = ibmq_montreal();
    PulseExecutor exec(cfg);
    const std::size_t n_dt = 45000;
    const double t = n_dt * cfg.dt;
    const Mat sup = exec.idle_superop_1q(n_dt, 0);
    Mat rho(cfg.levels, cfg.levels);
    rho(0, 0) = 0.5;
    rho(1, 1) = 0.5;
    rho(0, 1) = 0.5;
    rho(1, 0) = 0.5;
    const Mat out = quantum::apply_superop(sup, rho);
    EXPECT_NEAR(std::abs(out(0, 1)), 0.5 * std::exp(-t / cfg.qubit(0).t2), 1e-6);
}

TEST(Executor, CalibratedPiPulseFlipsQubit) {
    PulseExecutor exec(clean_device());
    const auto rabi = rabi_calibrate(exec, 0);
    const double beta = default_drag_beta(exec.config(), 0, 160);
    const auto wf = drag_waveform(160, {rabi.pi_amplitude, 0.0}, beta);
    const Mat sup = exec.waveform_superop_1q(wf.samples(), 0);
    const Mat rho = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_GT(rho(1, 1).real(), 0.999);
}

TEST(Executor, DragBeatsPlainGaussian) {
    // The DRAG quadrature cancels the third-level-induced phase error: the
    // pi pulse transfers more population to |1> than the plain Gaussian.
    PulseExecutor exec(clean_device());
    const auto rabi = rabi_calibrate(exec, 0);
    const double beta = default_drag_beta(exec.config(), 0, 160);

    const auto drag = drag_waveform(160, {rabi.pi_amplitude, 0.0}, beta);
    const auto plain = drag_waveform(160, {rabi.pi_amplitude, 0.0}, 0.0);
    const Mat rho_drag = quantum::apply_superop(exec.waveform_superop_1q(drag.samples(), 0),
                                                exec.ground_state_1q());
    const Mat rho_plain = quantum::apply_superop(exec.waveform_superop_1q(plain.samples(), 0),
                                                 exec.ground_state_1q());
    const double err_drag = 1.0 - rho_drag(1, 1).real();
    const double err_plain = 1.0 - rho_plain(1, 1).real();
    EXPECT_LT(err_drag, 0.5 * err_plain);
}

TEST(Executor, RzSuperopMatchesIdealRotation) {
    PulseExecutor exec(clean_device());
    const double theta = 0.7;
    const Mat sup = exec.rz_superop_1q(theta);
    // On the qubit subspace it must act as RZ(theta).
    Mat rho(3, 3);
    rho(0, 0) = 0.5;
    rho(1, 1) = 0.5;
    rho(0, 1) = 0.5;
    rho(1, 0) = 0.5;
    const Mat out = quantum::apply_superop(sup, rho);
    EXPECT_NEAR(std::arg(out(1, 0)), theta, 1e-12);
    EXPECT_NEAR(std::abs(out(0, 1)), 0.5, 1e-12);
}

TEST(Executor, VirtualZEquivalence) {
    // Gate-level circuit rz(pi/2) sx rz(pi/2) must act as Hadamard: check via
    // state preparation |0> -> |+>.
    PulseExecutor exec(clean_device());
    const auto defaults = build_default_gates(exec);
    pulse::QuantumCircuit qc(1);
    qc.h(0);
    const Mat rho = simulate_circuit_1q(exec, qc, defaults, 0);
    // Tolerance covers the *intentional* default-sx amplitude miscalibration
    // (DefaultGateOptions::sx_amp_relative_error) plus calibration shot noise.
    EXPECT_NEAR(rho(0, 0).real(), 0.5, 0.06);
    EXPECT_NEAR(rho(0, 1).real(), 0.5, 0.06);  // +X coherence of |+>
}

TEST(Executor, ScheduleFrameCorrectionMatchesGateComposition) {
    // The same circuit executed (a) by gate-superop composition and (b) by
    // lowering to a schedule with ShiftPhases and integrating samples must
    // produce the same state.
    PulseExecutor exec(clean_device());
    const auto defaults = build_default_gates(exec);
    pulse::QuantumCircuit qc(1);
    qc.rz(0, 0.4).sx(0).rz(0, -1.1).x(0).rz(0, 2.2);
    const Mat via_gates = simulate_circuit_1q(exec, qc, defaults, 0);

    const pulse::Schedule sched = pulse::circuit_to_schedule(qc, defaults);
    const Mat sup = exec.schedule_superop_1q(sched, 0);
    const Mat via_schedule = quantum::apply_superop(sup, exec.ground_state_1q());
    EXPECT_TRUE(via_gates.approx_equal(via_schedule, 1e-9));
}

TEST(Executor, MeasurementConfusionMatrix) {
    BackendConfig cfg = clean_device();
    cfg.qubits[0].readout_p10 = 0.1;
    cfg.qubits[0].readout_p01 = 0.2;
    PulseExecutor exec(cfg);
    EXPECT_NEAR(exec.p1_after_readout(exec.ground_state_1q(), 0), 0.1, 1e-12);
    Mat rho1(cfg.levels, cfg.levels);
    rho1(1, 1) = 1.0;
    EXPECT_NEAR(exec.p1_after_readout(rho1, 0), 0.8, 1e-12);
}

TEST(Executor, MeasurementShotsDeterministicPerSeed) {
    PulseExecutor exec(ibmq_montreal());
    const Mat rho = exec.ground_state_1q();
    const Counts a = exec.measure_1q(rho, 0, 1024, 42);
    const Counts b = exec.measure_1q(rho, 0, 1024, 42);
    EXPECT_EQ(a.histogram, b.histogram);
    EXPECT_EQ(a.shots, 1024);
    EXPECT_NEAR(a.probability("0") + a.probability("1"), 1.0, 1e-12);
}

TEST(Executor, TwoQubitIdlePreservesGround) {
    PulseExecutor exec(ibmq_montreal());
    const Mat sup = exec.idle_superop_2q(500);
    const Mat rho = quantum::apply_superop(sup, exec.ground_state_2q());
    EXPECT_NEAR(rho(0, 0).real(), 1.0, 1e-9);
}

TEST(Executor, CrPulseEntanglesConditionally) {
    // A ZX90-calibrated CR pulse rotates the target in opposite directions
    // for the two control states.
    PulseExecutor exec(clean_device());
    const auto defaults = build_default_gates(exec);
    ASSERT_TRUE(defaults.has("cx", {0, 1}));

    pulse::QuantumCircuit qc(2);
    qc.cx(0, 1);
    // |00> -> |00| (control off: target returns to 0).
    Mat rho = simulate_circuit_2q(exec, qc, defaults);
    EXPECT_GT(rho(0, 0).real(), 0.98);

    pulse::QuantumCircuit qc2(2);
    qc2.x(0).cx(0, 1);
    rho = simulate_circuit_2q(exec, qc2, defaults);
    EXPECT_GT(rho(3, 3).real(), 0.95);  // |11>
}

TEST(Executor, DefaultCxFidelityReasonable) {
    PulseExecutor exec(ibmq_montreal());
    const auto defaults = build_default_gates(exec);
    const Mat sup = exec.schedule_superop_2q(defaults.get("cx", {0, 1}));
    const double f = quantum::average_gate_fidelity_superop(quantum::gates::cx(), sup);
    // Realistic default CX: better than 0.97, worse than perfect.
    EXPECT_GT(f, 0.97);
    EXPECT_LT(f, 0.99999);
}

TEST(Executor, DefaultXFidelityAtPaperScale) {
    PulseExecutor exec(ibmq_montreal());
    const auto defaults = build_default_gates(exec);
    const Mat sup = exec.schedule_superop_1q(defaults.get("x", {0}), 0);
    // Compare against X extended by identity on the leakage level.
    Mat x_full = Mat::identity(3);
    x_full.set_block(0, 0, quantum::gates::x());
    const double f = quantum::average_gate_fidelity_superop(x_full, sup);
    const double err = 1.0 - f;
    // Paper scale: default 1Q error a few 1e-4.
    EXPECT_GT(err, 1e-5);
    EXPECT_LT(err, 5e-3);
}

}  // namespace
}  // namespace qoc::device
