#include "util/fnv1a.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

namespace qoc::util {
namespace {

// Published FNV-1a 64-bit test vectors (Fowler/Noll/Vo reference set).
TEST(Fnv1a, ReferenceVectors) {
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);  // offset basis
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, BuilderMatchesFreeFunction) {
    Fnv1a h;
    h.bytes("foo");
    h.bytes("bar");
    EXPECT_EQ(h.digest(), fnv1a("foobar"));
}

TEST(Fnv1a, U64IsLittleEndianByteFraming) {
    // u64(w) must hash exactly the 8 bytes of w, LSB first, regardless of
    // host endianness -- the framing the three consolidated call sites
    // (clifford phase keys, executor prop keys, pulse-store keys) rely on.
    Fnv1a h;
    h.u64(0x0807060504030201ull);
    Fnv1a ref;
    for (std::uint8_t b = 1; b <= 8; ++b) ref.byte(b);
    EXPECT_EQ(h.digest(), ref.digest());
}

TEST(Fnv1a, WordsHelperMatchesBuilder) {
    const std::vector<std::uint64_t> words = {1, 0xdeadbeefull, ~0ull};
    Fnv1a h;
    for (const auto w : words) h.u64(w);
    EXPECT_EQ(fnv1a_words(words.data(), words.size()), h.digest());
}

TEST(Fnv1a, I64AndF64AreBitPatternFramings) {
    Fnv1a a;
    a.i64(-1);
    Fnv1a b;
    b.u64(~0ull);
    EXPECT_EQ(a.digest(), b.digest());

    Fnv1a c;
    c.f64_bits(1.5);
    Fnv1a d;
    d.u64(std::bit_cast<std::uint64_t>(1.5));
    EXPECT_EQ(c.digest(), d.digest());
}

TEST(Fnv1a, OrderAndBoundariesMatter) {
    EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
    Fnv1a one_word;
    one_word.u64(1);
    Fnv1a two_words;
    two_words.u64(1);
    two_words.u64(0);
    EXPECT_NE(one_word.digest(), two_words.digest());
}

TEST(Fnv1a, ConstexprUsable) {
    constexpr std::uint64_t k = fnv1a("compile-time");
    static_assert(k != 0);
    EXPECT_EQ(k, fnv1a("compile-time"));
}

}  // namespace
}  // namespace qoc::util
