/// Allocation-budget regression tests.
///
/// PR 1 made the GRAPE evaluator and the matvec kernels allocation-free on
/// shape reuse; PR 2 did the same for the RB propagation loop.  Nothing
/// enforced it -- a stray temporary in `gemm_into` would silently cost ~30%
/// of GRAPE wall time.  These tests pin the property with a real meter:
///
///  * the `*_into` kernels perform EXACTLY ZERO heap allocations after the
///    one-time shape warmup;
///  * steady-state GRAPE iterations and RB seeds stay within small committed
///    allocation budgets, and their counts are run-to-run deterministic.
///
/// Budgets are measured on the seed machine and include ~2x headroom; if a
/// test trips, a hot path gained an allocation -- find it before raising the
/// budget.  With contracts compiled in, the optimizer-level tests skip: the
/// invariant checks allocate scratch (residual matrices, Choi forms) by
/// design, and perf-facing guarantees only apply to release-style builds.

#include "analysis/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "contracts/contracts.hpp"
#include "control/grape.hpp"
#include "device/calibration.hpp"
#include "linalg/kron.hpp"
#include "linalg/matrix.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"
#include "rb/rb.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/workspace_pool.hpp"

#include <optional>

namespace qoc {
namespace {

using linalg::Mat;
using testing::AllocMeter;

/// Pins the task pool to size 1 so workspace-lease creation and task
/// submission cannot leak into a measured region (counts stay exactly
/// reproducible; size 1 is the pure-inline, zero-allocation fast path).
class AllocGuardTest : public ::testing::Test {
protected:
    void SetUp() override { serial_.emplace(1); }
    void TearDown() override { serial_.reset(); }

private:
    std::optional<runtime::ScopedPoolSize> serial_;
};

Mat random_like(std::size_t rows, std::size_t cols, std::uint64_t seed) {
    Mat m(rows, cols);
    std::uint64_t s = seed;
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            m(i, j) = {static_cast<double>(s >> 40) * 1e-7, static_cast<double>(s >> 44) * 1e-7};
        }
    }
    return m;
}

TEST_F(AllocGuardTest, MeterCatchesInjectedAllocation) {
    // Self-test: the interposer must see an allocation a hot loop sneaks in.
    AllocMeter m;
    double sink = 0.0;
    for (int i = 0; i < 4; ++i) {
        std::vector<double> injected(64, 1.0);  // the "bug"
        sink += injected[0];
    }
    EXPECT_GE(m.delta(), 4u);
    EXPECT_GT(sink, 0.0);
}

TEST_F(AllocGuardTest, GemmIntoIsAllocationFreeAfterWarmup) {
    const Mat a = random_like(24, 24, 1);
    const Mat b = random_like(24, 24, 2);
    Mat out;
    linalg::gemm_into(a, b, out);  // warmup: sizes the output once
    AllocMeter m;
    for (int i = 0; i < 16; ++i) linalg::gemm_into(a, b, out);
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(AllocGuardTest, GemvIntoIsAllocationFreeAfterWarmup) {
    const Mat a = random_like(36, 36, 3);
    const Mat x = random_like(36, 1, 4);
    Mat out;
    linalg::gemv_into(a, x, out);
    AllocMeter m;
    for (int i = 0; i < 16; ++i) linalg::gemv_into(a, x, out);
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(AllocGuardTest, ApplySuperopIntoIsAllocationFreeAfterWarmup) {
    const Mat s = quantum::unitary_superop(quantum::gates::h());
    const Mat v = random_like(4, 1, 5);
    Mat out;
    quantum::apply_superop_into(s, v, out);
    AllocMeter m;
    for (int i = 0; i < 16; ++i) quantum::apply_superop_into(s, v, out);
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(AllocGuardTest, WorkspacePoolLeaseReuseAllocationFreeAfterWarmup) {
    // The runtime arena's steady state: acquire pops the LIFO free list,
    // release pushes within reserved capacity -- zero heap traffic after
    // the first lease created (and sized) the single workspace.
    struct Scratch {
        Mat m;
    };
    runtime::WorkspacePool<Scratch> pool;
    {
        auto lease = pool.acquire();  // warmup: creates + sizes the workspace
        lease->m = random_like(16, 16, 7);
    }
    AllocMeter meter;
    for (int i = 0; i < 64; ++i) {
        auto lease = pool.acquire();
        lease->m(0, 0) = {static_cast<double>(i), 0.0};
    }
    EXPECT_EQ(meter.delta(), 0u);
    EXPECT_EQ(pool.created(), 1u) << "sequential leases must reuse one workspace";
}

#if defined(QOC_CONTRACTS_ENABLED)

TEST_F(AllocGuardTest, GrapeSteadyStateIterationBudget) {
    GTEST_SKIP() << "contracts compiled in: invariant checks allocate scratch by design";
}
TEST_F(AllocGuardTest, RbRunAllocDeterministicAndBudgeted) {
    GTEST_SKIP() << "contracts compiled in: invariant checks allocate scratch by design";
}

#else  // !QOC_CONTRACTS_ENABLED

/// Per-iteration allocation ceiling for steady-state GRAPE (L-BFGS-B
/// bookkeeping + result-history growth; the evaluator itself is zero-alloc).
/// Measured 107 on the seed machine; ~2x headroom.
constexpr std::uint64_t kGrapeIterAllocBudget = 256;

/// Total ceiling for one small run_rb_1q (3 lengths x 2 seeds, warm caches).
/// Dominated by the Levenberg-Marquardt decay fit, whose iteration count --
/// and hence allocation count -- depends on the sampled survivals, so the
/// bound is coarse; the propagation loop itself is pinned to zero below.
/// Measured 3544 on the seed machine; ~2x headroom.
constexpr std::uint64_t kRb1qRunAllocBudget = 8192;

control::GrapeProblem small_transmon_problem() {
    control::GrapeProblem p;
    p.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    p.target = quantum::gates::x();
    p.subspace_isometry = quantum::qubit_isometry(3);
    p.n_timeslots = 16;
    p.evo_time = 4.0;
    p.fidelity = control::FidelityType::kPsu;
    p.initial_amps.resize(p.n_timeslots);
    for (std::size_t k = 0; k < p.n_timeslots; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(p.n_timeslots);
        p.initial_amps[k] = {0.3 * t, 0.2 * (1.0 - t)};
    }
    return p;
}

TEST_F(AllocGuardTest, GrapeSteadyStateIterationBudget) {
    const control::GrapeProblem p = small_transmon_problem();
    optim::LbfgsBOptions opts;
    opts.max_iterations = 12;
    opts.pg_tol = 0.0;  // run all iterations
    opts.f_tol = 0.0;

    std::vector<std::uint64_t> marks;
    marks.reserve(64);  // keep the callback itself allocation-free
    opts.iter_callback = [&](const optim::IterationRecord&) {
        marks.push_back(testing::alloc_count());
    };
    control::grape_unitary(p, opts);
    ASSERT_GE(marks.size(), 8u);

    // Skip the first iterations (workspace setup, history-vector growth);
    // steady state must stay within the committed budget.
    std::uint64_t worst = 0;
    for (std::size_t i = 4; i < marks.size(); ++i) {
        worst = std::max(worst, marks[i] - marks[i - 1]);
    }
    RecordProperty("worst_steady_iter_allocs", static_cast<int>(worst));
    EXPECT_LE(worst, kGrapeIterAllocBudget)
        << "a steady-state GRAPE iteration gained heap allocations";
}

TEST_F(AllocGuardTest, RbPropagationLoopAllocationFree) {
    // The per-seed hot loop of the matvec RB engine: one superop matvec per
    // Clifford.  After buffer warmup it must allocate NOTHING, whatever the
    // sequence length.
    const device::PulseExecutor exec{device::ibmq_montreal()};
    const pulse::InstructionScheduleMap defaults = device::build_default_gates(exec);
    const rb::Clifford1Q group;
    const rb::GateSet1Q gates(exec, defaults, 0, group);

    Mat v = linalg::vec(exec.ground_state_1q());
    Mat w = v;
    quantum::apply_superop_into(gates.clifford_superop(0), v, w);
    quantum::apply_superop_into(gates.clifford_superop(1), w, v);

    AllocMeter m;
    for (int rep = 0; rep < 8; ++rep) {
        for (std::size_t c = 0; c < rb::Clifford1Q::kSize; ++c) {
            quantum::apply_superop_into(gates.clifford_superop(c), v, w);
            std::swap(v, w);  // buffer ping-pong, allocation-free
        }
    }
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(AllocGuardTest, RbRunAllocDeterministicAndBudgeted) {
    const device::PulseExecutor exec{device::ibmq_montreal()};
    const pulse::InstructionScheduleMap defaults = device::build_default_gates(exec);
    const rb::Clifford1Q group;
    const rb::GateSet1Q gates(exec, defaults, 0, group);

    auto run_once = [&] {
        rb::RbOptions opts;
        opts.lengths = {1, 10, 20};
        opts.seeds_per_length = 2;
        opts.shots = 64;
        AllocMeter m;
        rb::run_rb_1q(exec, gates, 0, opts);
        return m.delta();
    };

    run_once();  // warm static/lazy state before measuring
    const std::uint64_t a = run_once();
    const std::uint64_t a_again = run_once();
    EXPECT_EQ(a, a_again) << "RB allocation count must be run-to-run deterministic";
    RecordProperty("allocs_per_small_rb_run", static_cast<int>(a));
    EXPECT_LE(a, kRb1qRunAllocBudget) << "the RB path gained heap allocations";
}

#endif  // QOC_CONTRACTS_ENABLED

}  // namespace
}  // namespace qoc
