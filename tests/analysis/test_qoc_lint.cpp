// In-process coverage for the qoc_lint rule set against the checked-in
// fixture tree (tests/analysis/lint_fixtures/<rule>/{positive,negative}.cxx).
//
// Every rule must (a) fire on its positive fixture, (b) stay silent on its
// negative fixture, and (c) stop firing when disabled -- (c) is what proves
// each finding actually comes from the named rule and not a neighbour.  The
// golden test pins the JSON report byte-for-byte so the CI artifact format
// cannot drift silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

std::string fixture_dir(const std::string& rule) {
    return std::string(QOC_LINT_FIXTURES) + "/" + rule;
}

std::vector<qoc_lint::Finding> scan(const std::string& path,
                                    std::vector<std::string> disabled = {}) {
    qoc_lint::Options opt;
    opt.paths = {path};
    opt.root = QOC_LINT_FIXTURES;
    opt.ignore_scopes = true;  // scope layout is part of the real tree, not fixtures
    opt.disabled = std::move(disabled);
    return qoc_lint::run(opt);
}

std::size_t count_rule(const std::vector<qoc_lint::Finding>& findings, const std::string& rule) {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const qoc_lint::Finding& f) { return f.rule == rule; }));
}

struct RuleCase {
    const char* rule;
    std::size_t positive_findings;  // of this rule, in positive.cxx
};

// Expected finding counts mirror the fixture comments; a change here must be
// deliberate on both sides.
const RuleCase kCases[] = {
    {"determinism-wall-clock", 6},
    {"no-omp-outside-runtime", 3},
    {"hot-path-alloc", 6},
    {"dense-superop-materialization", 4},
    {"unordered-iteration-in-serialization", 1},
    {"obs-enum-sync", 2},
};

}  // namespace

TEST(QocLint, RegistryListsEveryRule) {
    const std::vector<qoc_lint::RuleInfo>& rules = qoc_lint::rules();
    for (const RuleCase& c : kCases) {
        const bool present =
            std::any_of(rules.begin(), rules.end(),
                        [&](const qoc_lint::RuleInfo& r) { return c.rule == std::string(r.name); });
        EXPECT_TRUE(present) << "rule missing from registry: " << c.rule;
    }
    const bool has_suppression_rule =
        std::any_of(rules.begin(), rules.end(), [](const qoc_lint::RuleInfo& r) {
            return std::string(r.name) == "suppression-without-justification";
        });
    EXPECT_TRUE(has_suppression_rule);
}

TEST(QocLint, PositiveFixturesFire) {
    for (const RuleCase& c : kCases) {
        const auto findings = scan(fixture_dir(c.rule) + "/positive.cxx");
        EXPECT_EQ(count_rule(findings, c.rule), c.positive_findings) << "rule: " << c.rule;
        // Positives are single-rule by construction: no cross-talk.
        EXPECT_EQ(findings.size(), c.positive_findings) << "rule: " << c.rule;
    }
}

TEST(QocLint, NegativeFixturesStaySilent) {
    for (const RuleCase& c : kCases) {
        const auto findings = scan(fixture_dir(c.rule) + "/negative.cxx");
        EXPECT_TRUE(findings.empty())
            << "rule " << c.rule << " fired on its negative fixture: "
            << (findings.empty() ? "" : findings.front().message);
    }
}

TEST(QocLint, DisablingARuleSilencesItsPositiveFixture) {
    // This is the "fixture fails when the rule is disabled" acceptance check:
    // with the rule off the positive fixture must report nothing, proving the
    // findings in PositiveFixturesFire come from that rule alone.
    for (const RuleCase& c : kCases) {
        const auto findings = scan(fixture_dir(c.rule) + "/positive.cxx", {c.rule});
        EXPECT_EQ(count_rule(findings, c.rule), 0u) << "rule: " << c.rule;
    }
}

TEST(QocLint, UnjustifiedSuppressionIsAFindingAndDoesNotSuppress) {
    const auto findings = scan(fixture_dir("suppression-without-justification") + "/positive.cxx");
    // Three bad allows (bare, empty justification, unknown rule) ...
    EXPECT_EQ(count_rule(findings, "suppression-without-justification"), 3u);
    // ... and the underlying wall-clock hits still surface.
    EXPECT_EQ(count_rule(findings, "determinism-wall-clock"), 2u);
}

TEST(QocLint, JustifiedSuppressionSilencesExactlyThatSite) {
    const auto findings = scan(fixture_dir("suppression-without-justification") + "/negative.cxx");
    EXPECT_TRUE(findings.empty());
}

TEST(QocLint, SuppressionAuditCannotBeDisabled) {
    // The suppression audit runs even when named in `disabled`: exemptions
    // must stay reviewable no matter how the tool is invoked.
    const auto findings = scan(fixture_dir("suppression-without-justification") + "/positive.cxx",
                               {"suppression-without-justification"});
    EXPECT_EQ(count_rule(findings, "suppression-without-justification"), 3u);
}

TEST(QocLint, GoldenJsonReport) {
    const auto findings = scan(QOC_LINT_FIXTURES);
    EXPECT_EQ(findings.size(), 27u);
    const std::string actual = qoc_lint::to_json(findings);

    std::ifstream in(std::string(QOC_LINT_FIXTURES) + "/expected.json");
    ASSERT_TRUE(in.good()) << "missing golden file expected.json";
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();
    // The golden file was captured from CLI stdout; tolerate one trailing
    // newline difference.
    auto rstrip = [](std::string s) {
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
        return s;
    };
    EXPECT_EQ(rstrip(actual), rstrip(expected));
}

TEST(QocLint, FindingsAreSortedAndRelative) {
    const auto findings = scan(QOC_LINT_FIXTURES);
    ASSERT_FALSE(findings.empty());
    for (std::size_t i = 1; i < findings.size(); ++i) {
        const auto key = [](const qoc_lint::Finding& f) {
            return std::make_tuple(f.file, f.line, f.rule, f.message);
        };
        EXPECT_LE(key(findings[i - 1]), key(findings[i]));
    }
    for (const qoc_lint::Finding& f : findings) {
        EXPECT_NE(f.file.front(), '/') << "paths must be root-relative: " << f.file;
    }
}
