/// Allocation guards for the structured superoperator kernels: the factored
/// Kronecker apply, the CSR SpMV and the StructuredSuperOp dispatch (single
/// column, strided column and d^2 x B batch) must all perform EXACTLY ZERO
/// heap allocations once their output/scratch buffers have seen the shape --
/// they sit inside the RB per-step and GRAPE per-slot hot loops.

#include "analysis/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "linalg/kron.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/sparse.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"
#include "quantum/superop_kron.hpp"
#include "quantum/superop_structured.hpp"
#include "runtime/task_pool.hpp"

namespace qoc {
namespace {

using linalg::cplx;
using linalg::Mat;
using testing::AllocMeter;

class SuperopAllocGuardTest : public ::testing::Test {
protected:
    void SetUp() override { serial_.emplace(1); }
    void TearDown() override { serial_.reset(); }

private:
    std::optional<runtime::ScopedPoolSize> serial_;
};

Mat deterministic_hermitian(std::size_t n, std::uint64_t seed) {
    Mat m(n, n);
    std::uint64_t s = seed;
    auto next = [&s] {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>(s >> 40) * 1e-7;
    };
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = {next(), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            m(i, j) = {next(), next()};
            m(j, i) = std::conj(m(i, j));
        }
    }
    return m;
}

TEST_F(SuperopAllocGuardTest, KronApplyIsAllocationFreeAfterWarmup) {
    const std::size_t d = 9;
    const quantum::KronSuperOp kron = quantum::KronSuperOp::liouvillian(
        deterministic_hermitian(d, 3), {0.1 * quantum::annihilation(d)});
    Mat rho = deterministic_hermitian(d, 5);
    Mat v = linalg::vec(rho);
    Mat out, scratch, vout, vscratch;
    kron.apply_rho_into(rho, out, scratch);  // warmup sizes all buffers
    kron.apply_vec_into(v, vout, vscratch);
    AllocMeter m;
    for (int i = 0; i < 16; ++i) {
        kron.apply_rho_into(rho, out, scratch);
        kron.apply_vec_into(v, vout, vscratch);
    }
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(SuperopAllocGuardTest, CsrSpmvIsAllocationFreeAfterWarmup) {
    const Mat dense = quantum::liouvillian(deterministic_hermitian(3, 7),
                                           {0.1 * quantum::annihilation(3)});
    const linalg::CsrMat csr = linalg::CsrMat::from_dense(dense);
    ASSERT_GT(csr.nnz(), 0u);
    Mat x(dense.cols(), 1);
    for (std::size_t i = 0; i < x.rows(); ++i) x(i, 0) = {1.0 / static_cast<double>(i + 1), 0.1};
    Mat out;
    csr.spmv_into(x, out);  // warmup
    AllocMeter m;
    for (int i = 0; i < 16; ++i) {
        csr.spmv_into(x, out);
        csr.apply_col(x.data().data(), out.data().data(), 1);
    }
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(SuperopAllocGuardTest, StructuredDispatchIsAllocationFreeAfterWarmup) {
    const Mat dense = quantum::liouvillian(deterministic_hermitian(4, 11),
                                           {0.1 * quantum::annihilation(4)});
    const quantum::StructuredSuperOp s = quantum::StructuredSuperOp::from_dense(dense);
    const std::size_t d2 = s.dim();
    const std::size_t batch = 8;
    Mat x(d2, batch);
    for (std::size_t i = 0; i < d2 * batch; ++i) {
        x.data()[i] = {1.0 / static_cast<double>(i + 2), -0.3};
    }
    Mat col(d2, 1), col_out, batch_out;
    for (std::size_t i = 0; i < d2; ++i) col(i, 0) = x(i, 0);
    s.apply_into(col, col_out);        // warmup all three entry points
    s.apply_batch_into(x, batch_out);
    AllocMeter m;
    for (int i = 0; i < 16; ++i) {
        s.apply_into(col, col_out);
        s.apply_col(x.data().data(), batch_out.data().data(), batch);
        s.apply_batch_into(x, batch_out);
    }
    EXPECT_EQ(m.delta(), 0u);
}

TEST_F(SuperopAllocGuardTest, SimdGemmRawIsAllocationFree) {
    const Mat a = deterministic_hermitian(16, 13);
    const Mat b = deterministic_hermitian(16, 17);
    Mat out;
    linalg::simd::gemm_into(a, b, out);  // warmup
    AllocMeter m;
    for (int i = 0; i < 16; ++i) {
        linalg::simd::gemm_into(a, b, out);
        linalg::simd::gemm_acc(a, b, out);
    }
    EXPECT_EQ(m.delta(), 0u);
}

}  // namespace
}  // namespace qoc
