// Fixture: an allow with no justification is itself a finding AND does not
// suppress the underlying violation; unknown rule names are flagged too.
#include <chrono>

double bad_suppressions() {
    // qoc-lint-allow(determinism-wall-clock)
    auto t0 = std::chrono::steady_clock::now();  // still flagged: no justification
    // qoc-lint-allow(determinism-wall-clock):
    auto t1 = std::chrono::steady_clock::now();  // still flagged: empty justification
    // qoc-lint-allow(no-such-rule): typo'd rule names must not pass silently
    return std::chrono::duration<double>(t1 - t0).count();
}
