// Fixture: a justified allow on the line above (or trailing on the same
// line) suppresses exactly that rule at that site, and is not a finding.
#include <chrono>

double justified_telemetry() {
    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry; never feeds the numerics
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::steady_clock::now();  // qoc-lint-allow(determinism-wall-clock): telemetry
    return std::chrono::duration<double>(t1 - t0).count();
}
