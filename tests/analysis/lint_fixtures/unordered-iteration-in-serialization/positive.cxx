// Fixture: JSONL emission iterating an unordered container must be flagged;
// hash-map iteration order is not a stable output.
#include <cstdio>
#include <string>
#include <unordered_map>

struct Store {
    std::unordered_map<std::string, double> cache;

    void dump_jsonl(std::FILE* f) const {
        for (const auto& [key, value] : cache) {  // flagged
            std::fprintf(f, "{\"type\":\"entry\",\"key\":\"%s\",\"value\":%f}\n", key.c_str(),
                         value);
        }
    }
};
