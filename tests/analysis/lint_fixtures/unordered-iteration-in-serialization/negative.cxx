// Fixture: sort-then-emit passes, and non-serializing iteration of an
// unordered container is fine.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

struct Store {
    std::unordered_map<std::string, double> cache;

    void dump_jsonl(std::FILE* f) const {
        std::vector<std::pair<std::string, double>> rows(cache.begin(), cache.end());
        std::sort(rows.begin(), rows.end());
        for (const auto& [key, value] : rows) {  // sorted copy: stable output
            std::fprintf(f, "{\"type\":\"entry\",\"key\":\"%s\",\"value\":%f}\n", key.c_str(),
                         value);
        }
    }

    double total() const {
        double sum = 0.0;
        for (const auto& [key, value] : cache) sum += value;  // not serialized
        return sum;
    }
};
