// Fixture: OpenMP usage outside src/runtime must be flagged.
#include <omp.h>  // flagged

#include <vector>

double parallel_sum(const std::vector<double>& xs) {
    double total = 0.0;
    const int width = omp_get_max_threads();  // flagged
    (void)width;
#pragma omp parallel for reduction(+ : total)  // flagged
    for (long i = 0; i < static_cast<long>(xs.size()); ++i) {
        total += xs[static_cast<std::size_t>(i)];
    }
    return total;
}
