// Fixture: parallelism through the task-pool substrate passes.
#include <cstddef>
#include <vector>

namespace fake_runtime {
void parallel_for(std::size_t n, void (*body)(std::size_t));
}

double pool_sum(const std::vector<double>& xs) {
    // Ordered reduction over pool-partitioned chunks: no OpenMP tokens at
    // all, which is exactly what the rule wants outside src/runtime.
    double total = 0.0;
    for (const double x : xs) total += x;
    return total;
}
