// Fixture: building the dense d^2 x d^2 superoperator outside the
// structured kernels must be flagged.
#include <cstddef>

struct Mat {
    Mat(std::size_t rows, std::size_t cols);
    Mat conj() const;
    Mat transpose() const;
    void resize(std::size_t rows, std::size_t cols);
};
Mat kron(const Mat& a, const Mat& b);
Mat operator-(const Mat& a, const Mat& b);

Mat unitary_superop(const Mat& u) {
    return kron(u.conj(), u);  // flagged: vectorization-convention build
}

Mat hand_rolled_liouvillian(const Mat& h, const Mat& ident) {
    return kron(ident, h) - kron(h.transpose(), ident);  // flagged (transpose)
}

Mat scratch_superop(std::size_t d) {
    Mat s(d * d, d * d);  // flagged: squared-dimension dense allocation
    s.resize(d * d, d * d);  // flagged
    return s;
}
