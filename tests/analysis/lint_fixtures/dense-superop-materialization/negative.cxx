// Fixture: operator-space kron (2x2 gate embeddings) and honest dense
// matrices pass; only superoperator-shaped construction is the invariant.
#include <cstddef>

struct Mat {
    Mat(std::size_t rows, std::size_t cols);
    static Mat identity(std::size_t n);
    void resize(std::size_t rows, std::size_t cols);
};
Mat kron(const Mat& a, const Mat& b);
Mat operator*(const Mat& a, const Mat& b);

Mat two_qubit_unitary(const Mat& ua, const Mat& ub) {
    return kron(ua, ub);  // operator space: no conj/transpose, allowed
}

Mat embedded_drive(const Mat& drive, std::size_t d) {
    Mat work(d, d * d);  // rectangular workspace, not a d^2 x d^2 superop
    work.resize(d, d * d);
    return kron(Mat::identity(2), drive) * work;
}
