// Fixture: deterministic RNG streams and justified telemetry sites pass.
#include <chrono>
#include <cstdint>
#include <random>

double deterministic_noise(std::uint64_t seed) {
    std::mt19937_64 rng(seed);  // seeded stream: deterministic, allowed
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(rng);
}

double wall_time_telemetry() {
    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry only; never feeds the numerics
    auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
