// Fixture: every banned clock/RNG source must be flagged.
#include <chrono>
#include <cstdlib>
#include <random>

double sample_time() {
    auto t0 = std::chrono::high_resolution_clock::now();  // flagged
    auto t1 = std::chrono::system_clock::now();           // flagged
    auto t2 = std::chrono::steady_clock::now();           // flagged
    (void)t0;
    (void)t1;
    return std::chrono::duration<double>(t2.time_since_epoch()).count();
}

int noisy_seed() {
    std::random_device rd;          // flagged
    std::srand(42);                 // flagged
    return std::rand() + int(rd()); // flagged
}
