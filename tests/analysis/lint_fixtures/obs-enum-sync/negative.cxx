// Fixture: enum and name table in sync (kCount excluded), distinct
// non-empty names.
#include <array>

enum class Cnt : unsigned {
    kGemmCalls,
    kGemvCalls,
    kCount
};

constexpr std::array<const char*, 2> kCounterNames = {
    "linalg.gemm.calls",
    "linalg.gemv.calls",
};

enum class Hist : unsigned {
    kDesignWall,
    kIrbWall,
    kCount
};

constexpr std::array<const char*, 2> kHistNames = {
    "design.wall",
    "irb.wall",
};
