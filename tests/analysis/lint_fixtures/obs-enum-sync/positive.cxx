// Fixture: the Cnt enum and its kCounterNames JSONL string table have
// drifted (three emission-relevant enumerators, two strings, one duplicated
// Hist name) -- all must be flagged.
#include <array>

enum class Cnt : unsigned {
    kGemmCalls,
    kGemvCalls,
    kLuFactorizations,
    kCount
};

constexpr std::array<const char*, 2> kCounterNames = {
    "linalg.gemm.calls",
    "linalg.gemv.calls",
};  // flagged: 3 enumerators vs 2 strings

enum class Hist : unsigned {
    kDesignWall,
    kIrbWall,
    kCount
};

constexpr std::array<const char*, 2> kHistNames = {
    "design.wall",
    "design.wall",
};  // flagged: duplicate JSONL key
