// Fixture: the shape-adapt idiom passes, and non-hot functions may allocate.
#include <string>
#include <vector>

struct Buffer {
    void resize(std::size_t n);
    double* data();
    std::size_t size() const;
};

// `_into` kernel in the repo idiom: resize-to-shape (the runtime alloc guard
// pins it to zero allocations after warmup), then pure indexing.
void scale_into(const Buffer& in, double k, Buffer& out) {
    Buffer& o = out;
    o.resize(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        o.data()[i] = k * const_cast<Buffer&>(in).data()[i];
    }
}

// Not `_into`, not a hot-path file: growth and strings are fine here.
std::string describe(const std::vector<double>& xs) {
    std::vector<std::string> parts;
    parts.push_back(std::to_string(xs.size()));
    return parts.empty() ? std::string() : parts.front();
}
