// Fixture: allocation in an `_into` kernel must be flagged.
#include <string>
#include <vector>

void accumulate_into(const std::vector<double>& xs, std::vector<double>& out) {
    out.reserve(xs.size());  // flagged: capacity growth in a hot kernel
    double total = 0.0;
    for (const double x : xs) {
        total += x;
        out.push_back(total);  // flagged: element-wise growth
    }
    double* scratch = new double[xs.size()];  // flagged: operator new
    delete[] scratch;                         // flagged: operator delete
    std::string label = std::to_string(total);  // flagged (std::string + std::to_string)
    (void)label;
}
