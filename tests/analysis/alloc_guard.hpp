/// Heap-allocation meter for the analysis tests.
///
/// tests/analysis/alloc_interpose.cpp replaces the global `operator new`
/// family IN THIS TEST BINARY ONLY with counting forwards to malloc.  The
/// meter reads the counter before and after a measured region, so a test can
/// assert "this kernel performs exactly zero heap allocations" or "this
/// optimizer iteration stays within its allocation budget".
///
/// Do not link alloc_interpose.cpp into sanitizer builds: ASan/TSan provide
/// their own allocator interposition and the two replacements conflict (the
/// tests/CMakeLists.txt registration is gated accordingly).
#pragma once

#include <cstdint>

namespace qoc::testing {

/// Number of global operator new / new[] calls since process start.
std::uint64_t alloc_count() noexcept;

/// Counts allocations from its construction: `AllocMeter m; ...; m.delta()`.
class AllocMeter {
public:
    AllocMeter() noexcept : start_(alloc_count()) {}
    std::uint64_t delta() const noexcept { return alloc_count() - start_; }

private:
    std::uint64_t start_;
};

}  // namespace qoc::testing
