/// Counting replacements for the global allocation functions (see
/// alloc_guard.hpp).  C++ guarantees a program may replace these; every
/// `new`-expression and standard-library allocation in the test binary then
/// funnels through the counter.  Deallocation goes straight to free() --
/// both malloc and posix_memalign memory free() correctly.

#include "analysis/alloc_guard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_malloc(std::size_t n) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (align < sizeof(void*)) align = sizeof(void*);
    void* p = nullptr;
    if (posix_memalign(&p, align, n != 0 ? n : 1) != 0) return nullptr;
    return p;
}
}  // namespace

namespace qoc::testing {
std::uint64_t alloc_count() noexcept { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace qoc::testing

void* operator new(std::size_t n) {
    if (void* p = counted_malloc(n)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
    if (void* p = counted_malloc(n)) return p;
    throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_malloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_malloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
    if (void* p = counted_aligned(n, static_cast<std::size_t>(al))) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
    if (void* p = counted_aligned(n, static_cast<std::size_t>(al))) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
