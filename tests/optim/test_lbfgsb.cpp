#include "optim/lbfgsb.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qoc::optim {
namespace {

/// N-dimensional Rosenbrock: global minimum at (1, ..., 1) with f = 0.
double rosenbrock(const std::vector<double>& x, std::vector<double>& g) {
    const std::size_t n = x.size();
    g.assign(n, 0.0);
    double f = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double a = x[i + 1] - x[i] * x[i];
        const double b = 1.0 - x[i];
        f += 100.0 * a * a + b * b;
        g[i] += -400.0 * a * x[i] - 2.0 * b;
        g[i + 1] += 200.0 * a;
    }
    return f;
}

/// Convex quadratic with distinct curvatures, minimum at center c.
Objective quadratic(std::vector<double> c) {
    return [c = std::move(c)](const std::vector<double>& x, std::vector<double>& g) {
        g.assign(x.size(), 0.0);
        double f = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double w = 1.0 + static_cast<double>(i);
            f += 0.5 * w * (x[i] - c[i]) * (x[i] - c[i]);
            g[i] = w * (x[i] - c[i]);
        }
        return f;
    };
}

TEST(LbfgsB, QuadraticUnbounded) {
    const std::vector<double> c{1.0, -2.0, 3.0, 0.5};
    const auto res = lbfgsb_minimize(quadratic(c), {0.0, 0.0, 0.0, 0.0},
                                     Bounds::unbounded(4));
    ASSERT_EQ(res.x.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(res.x[i], c[i], 1e-6);
    EXPECT_LT(res.f, 1e-12);
}

TEST(LbfgsB, QuadraticWithActiveBounds) {
    // Minimum at (1, -2, 3) but box is [0, 2]^3: solution clips to (1, 0, 2).
    const auto res = lbfgsb_minimize(quadratic({1.0, -2.0, 3.0}), {0.5, 0.5, 0.5},
                                     Bounds::uniform(3, 0.0, 2.0));
    EXPECT_NEAR(res.x[0], 1.0, 1e-6);
    EXPECT_NEAR(res.x[1], 0.0, 1e-8);
    EXPECT_NEAR(res.x[2], 2.0, 1e-8);
}

TEST(LbfgsB, Rosenbrock2D) {
    const auto res = lbfgsb_minimize(rosenbrock, {-1.2, 1.0}, Bounds::unbounded(2),
                                     {.max_iterations = 1000});
    EXPECT_NEAR(res.x[0], 1.0, 1e-5);
    EXPECT_NEAR(res.x[1], 1.0, 1e-5);
    EXPECT_LT(res.f, 1e-10);
}

TEST(LbfgsB, Rosenbrock10D) {
    std::vector<double> x0(10, -1.0);
    const auto res = lbfgsb_minimize(rosenbrock, x0, Bounds::unbounded(10),
                                     {.max_iterations = 3000, .max_evaluations = 20000});
    for (double v : res.x) EXPECT_NEAR(v, 1.0, 1e-4);
}

TEST(LbfgsB, RosenbrockBoundedAwayFromMinimum) {
    // Box [-2, 0.5]^2 excludes (1,1); the constrained solution rides the
    // x0 = 0.5 bound (known result: x = (0.5, 0.25)).
    const auto res = lbfgsb_minimize(rosenbrock, {-1.0, -1.0},
                                     Bounds::uniform(2, -2.0, 0.5),
                                     {.max_iterations = 2000});
    EXPECT_NEAR(res.x[0], 0.5, 1e-6);
    EXPECT_NEAR(res.x[1], 0.25, 1e-5);
}

TEST(LbfgsB, BealeFunction) {
    // Beale: min at (3, 0.5), f = 0.
    Objective beale = [](const std::vector<double>& x, std::vector<double>& g) {
        const double a = 1.5 - x[0] + x[0] * x[1];
        const double b = 2.25 - x[0] + x[0] * x[1] * x[1];
        const double c = 2.625 - x[0] + x[0] * x[1] * x[1] * x[1];
        g.assign(2, 0.0);
        g[0] = 2.0 * a * (x[1] - 1.0) + 2.0 * b * (x[1] * x[1] - 1.0) +
               2.0 * c * (x[1] * x[1] * x[1] - 1.0);
        g[1] = 2.0 * a * x[0] + 2.0 * b * 2.0 * x[0] * x[1] +
               2.0 * c * 3.0 * x[0] * x[1] * x[1];
        return a * a + b * b + c * c;
    };
    const auto res = lbfgsb_minimize(beale, {1.0, 1.0}, Bounds::uniform(2, -4.5, 4.5),
                                     {.max_iterations = 1000});
    EXPECT_NEAR(res.x[0], 3.0, 1e-4);
    EXPECT_NEAR(res.x[1], 0.5, 1e-4);
}

TEST(LbfgsB, StartOutsideBoxIsClipped) {
    const auto res = lbfgsb_minimize(quadratic({0.0, 0.0}), {10.0, -10.0},
                                     Bounds::uniform(2, -1.0, 1.0));
    EXPECT_NEAR(res.x[0], 0.0, 1e-7);
    EXPECT_NEAR(res.x[1], 0.0, 1e-7);
}

TEST(LbfgsB, TargetObjectiveStopsEarly) {
    LbfgsBOptions opts;
    opts.target_f = 1.0;
    const auto res = lbfgsb_minimize(rosenbrock, {-1.2, 1.0}, Bounds::unbounded(2), opts);
    EXPECT_EQ(res.reason, StopReason::kTargetReached);
    EXPECT_LE(res.f, 1.0);
}

TEST(LbfgsB, MaxIterationsRespected) {
    LbfgsBOptions opts;
    opts.max_iterations = 2;
    opts.pg_tol = 0.0;
    opts.f_tol = 0.0;
    const auto res = lbfgsb_minimize(rosenbrock, {-1.2, 1.0}, Bounds::unbounded(2), opts);
    EXPECT_LE(res.iterations, 2);
}

TEST(LbfgsB, CallbackObservesMonotoneDecrease) {
    std::vector<double> history;
    LbfgsBOptions opts;
    opts.iter_callback = [&](const IterationRecord& rec) { history.push_back(rec.cost); };
    lbfgsb_minimize(rosenbrock, {-1.2, 1.0}, Bounds::unbounded(2), opts);
    ASSERT_GT(history.size(), 2u);
    for (std::size_t i = 1; i < history.size(); ++i) EXPECT_LE(history[i], history[i - 1] + 1e-12);
}

TEST(LbfgsB, MismatchedBoundsThrow) {
    Bounds b = Bounds::unbounded(3);
    EXPECT_THROW(lbfgsb_minimize(quadratic({0.0, 0.0}), {0.0, 0.0}, b), std::invalid_argument);
    Bounds bad = Bounds::uniform(2, 1.0, -1.0);
    EXPECT_THROW(lbfgsb_minimize(quadratic({0.0, 0.0}), {0.0, 0.0}, bad),
                 std::invalid_argument);
}

TEST(LbfgsB, AlreadyAtMinimumConvergesImmediately) {
    const auto res = lbfgsb_minimize(quadratic({1.0, 1.0}), {1.0, 1.0}, Bounds::unbounded(2));
    EXPECT_EQ(res.reason, StopReason::kConverged);
    EXPECT_LE(res.iterations, 1);
}

TEST(LbfgsB, TightBoxPinsAllVariables) {
    // Degenerate box [0.3, 0.3]^2: nothing to optimize, stays at corner.
    const auto res = lbfgsb_minimize(quadratic({1.0, 1.0}), {0.3, 0.3},
                                     Bounds::uniform(2, 0.3, 0.3));
    EXPECT_DOUBLE_EQ(res.x[0], 0.3);
    EXPECT_DOUBLE_EQ(res.x[1], 0.3);
}

/// Property-style sweep: random convex quadratics with random boxes must
/// converge to the clipped center (the exact solution for separable
/// quadratics).
class LbfgsBQuadraticSweep : public ::testing::TestWithParam<int> {};

TEST_P(LbfgsBQuadraticSweep, SolvesSeparableBoundedQuadratic) {
    const int seed = GetParam();
    std::srand(static_cast<unsigned>(seed));
    const std::size_t n = 5 + static_cast<std::size_t>(seed % 7);
    std::vector<double> c(n);
    Bounds b;
    b.lower.resize(n);
    b.upper.resize(n);
    auto rnd = [] { return -3.0 + 6.0 * (static_cast<double>(std::rand()) / RAND_MAX); };
    for (std::size_t i = 0; i < n; ++i) {
        c[i] = rnd();
        const double lo = rnd(), hi = rnd();
        b.lower[i] = std::min(lo, hi);
        b.upper[i] = std::max(lo, hi) + 0.1;
    }
    std::vector<double> x0(n, 0.0);
    b.clip(x0);
    const auto res = lbfgsb_minimize(quadratic(c), x0, b, {.max_iterations = 500});
    for (std::size_t i = 0; i < n; ++i) {
        const double expect = std::clamp(c[i], b.lower[i], b.upper[i]);
        EXPECT_NEAR(res.x[i], expect, 1e-5) << "i=" << i << " seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbfgsBQuadraticSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace qoc::optim
