#include "optim/levmar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qoc::optim {
namespace {

TEST(LevMar, LinearFitExact) {
    // y = 2x + 1, exact data: fit must recover coefficients to high accuracy.
    const std::size_t n = 10;
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = 2.0 * static_cast<double>(i) + 1.0;
    auto model = [](std::size_t i, const std::vector<double>& p) {
        return p[0] * static_cast<double>(i) + p[1];
    };
    const auto fit = levmar_fit(model, n, y, {0.5, 0.0});
    EXPECT_NEAR(fit.params[0], 2.0, 1e-8);
    EXPECT_NEAR(fit.params[1], 1.0, 1e-8);
    EXPECT_LT(fit.chi2, 1e-12);
}

TEST(LevMar, ExponentialDecayRecovery) {
    // The RB model A * alpha^m + B with known parameters and mild noise.
    const double A = 0.5, alpha = 0.995, B = 0.5;
    std::vector<double> lengths;
    for (int m = 1; m <= 400; m += 20) lengths.push_back(m);
    const std::size_t n = lengths.size();
    std::vector<double> y(n);
    std::mt19937 rng(7);
    std::normal_distribution<double> noise(0.0, 1e-4);
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = A * std::pow(alpha, lengths[i]) + B + noise(rng);
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::pow(p[1], lengths[i]) + p[2];
    };
    const auto fit = levmar_fit(model, n, y, {0.4, 0.99, 0.4});
    EXPECT_NEAR(fit.params[0], A, 5e-3);
    EXPECT_NEAR(fit.params[1], alpha, 2e-4);
    EXPECT_NEAR(fit.params[2], B, 5e-3);
    EXPECT_TRUE(fit.converged);
    // Uncertainty should bracket the truth at ~3 sigma.
    EXPECT_LT(std::abs(fit.params[1] - alpha), 4.0 * fit.stderrs[1] + 1e-6);
}

TEST(LevMar, WeightsChangeSolution) {
    // Two inconsistent points; weights decide which one dominates.
    std::vector<double> y{0.0, 1.0};
    auto model = [](std::size_t, const std::vector<double>& p) { return p[0]; };
    const auto heavy0 = levmar_fit(model, 2, y, {0.5}, {0.01, 1.0});
    EXPECT_NEAR(heavy0.params[0], 0.0, 1e-3);
    const auto heavy1 = levmar_fit(model, 2, y, {0.5}, {1.0, 0.01});
    EXPECT_NEAR(heavy1.params[0], 1.0, 1e-3);
}

TEST(LevMar, StderrScalesWithNoise) {
    auto run = [](double noise_sd, unsigned seed) {
        const std::size_t n = 50;
        std::vector<double> y(n);
        std::mt19937 rng(seed);
        std::normal_distribution<double> noise(0.0, noise_sd);
        for (std::size_t i = 0; i < n; ++i) y[i] = 3.0 + noise(rng);
        auto model = [](std::size_t, const std::vector<double>& p) { return p[0]; };
        return levmar_fit(model, n, y, {0.0});
    };
    const auto lo = run(0.01, 3);
    const auto hi = run(0.1, 3);
    EXPECT_GT(hi.stderrs[0], 3.0 * lo.stderrs[0]);
}

TEST(LevMar, InputValidation) {
    auto model = [](std::size_t, const std::vector<double>& p) { return p[0]; };
    EXPECT_THROW(levmar_fit(model, 3, {1.0, 2.0}, {0.0}), std::invalid_argument);
    EXPECT_THROW(levmar_fit(model, 2, {1.0, 2.0}, {0.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(levmar_fit(model, 1, {1.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(LevMar, CosineRabiFit) {
    // Rabi calibration model: p0 * cos(2*pi*p1*x + p2) + p3.
    const std::size_t n = 60;
    std::vector<double> xs(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = static_cast<double>(i) / n;
        y[i] = 0.45 * std::cos(2.0 * M_PI * 2.2 * xs[i] + 0.3) + 0.5;
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::cos(2.0 * M_PI * p[1] * xs[i] + p[2]) + p[3];
    };
    const auto fit = levmar_fit(model, n, y, {0.4, 2.0, 0.0, 0.5});
    EXPECT_NEAR(fit.params[0], 0.45, 1e-6);
    EXPECT_NEAR(fit.params[1], 2.2, 1e-6);
    EXPECT_NEAR(fit.params[2], 0.3, 1e-5);
    EXPECT_NEAR(fit.params[3], 0.5, 1e-6);
}

}  // namespace
}  // namespace qoc::optim
