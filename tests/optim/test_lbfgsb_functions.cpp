/// Additional L-BFGS-B validation on the standard unconstrained/bounded
/// test-function gallery, parameterized over starting points.

#include <gtest/gtest.h>

#include <cmath>

#include "optim/gradient_check.hpp"
#include "optim/lbfgsb.hpp"

namespace qoc::optim {
namespace {

Objective booth() {
    return [](const std::vector<double>& x, std::vector<double>& g) {
        const double a = x[0] + 2.0 * x[1] - 7.0;
        const double b = 2.0 * x[0] + x[1] - 5.0;
        g = {2.0 * a + 4.0 * b, 4.0 * a + 2.0 * b};
        return a * a + b * b;
    };
}

Objective matyas() {
    return [](const std::vector<double>& x, std::vector<double>& g) {
        g = {0.52 * x[0] - 0.48 * x[1], 0.52 * x[1] - 0.48 * x[0]};
        return 0.26 * (x[0] * x[0] + x[1] * x[1]) - 0.48 * x[0] * x[1];
    };
}

Objective himmelblau() {
    return [](const std::vector<double>& x, std::vector<double>& g) {
        const double a = x[0] * x[0] + x[1] - 11.0;
        const double b = x[0] + x[1] * x[1] - 7.0;
        g = {4.0 * x[0] * a + 2.0 * b, 2.0 * a + 4.0 * x[1] * b};
        return a * a + b * b;
    };
}

TEST(LbfgsBFunctions, BoothMinimum) {
    const auto res = lbfgsb_minimize(booth(), {0.0, 0.0}, Bounds::uniform(2, -10.0, 10.0));
    EXPECT_NEAR(res.x[0], 1.0, 1e-5);
    EXPECT_NEAR(res.x[1], 3.0, 1e-5);
}

TEST(LbfgsBFunctions, MatyasMinimumAtOrigin) {
    const auto res = lbfgsb_minimize(matyas(), {3.0, -4.0}, Bounds::uniform(2, -10.0, 10.0));
    EXPECT_NEAR(res.x[0], 0.0, 1e-5);
    EXPECT_NEAR(res.x[1], 0.0, 1e-5);
}

class HimmelblauStarts : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(HimmelblauStarts, ReachesSomeGlobalMinimum) {
    // Himmelblau has four global minima, all with f = 0.
    const auto [x0, y0] = GetParam();
    const auto res = lbfgsb_minimize(himmelblau(), {x0, y0}, Bounds::uniform(2, -6.0, 6.0),
                                     {.max_iterations = 500});
    EXPECT_LT(res.f, 1e-8) << "start (" << x0 << ", " << y0 << ")";
}

INSTANTIATE_TEST_SUITE_P(Grid, HimmelblauStarts,
                         ::testing::Values(std::pair{0.0, 0.0}, std::pair{4.0, 4.0},
                                           std::pair{-4.0, 4.0}, std::pair{-4.0, -4.0},
                                           std::pair{4.0, -4.0}, std::pair{1.0, -2.0}));

TEST(LbfgsBFunctions, GradientCheckerAgreesOnTestFunctions) {
    for (const auto& [name, obj] : {std::pair<const char*, Objective>{"booth", booth()},
                                    {"matyas", matyas()},
                                    {"himmelblau", himmelblau()}}) {
        const auto res = check_gradient(obj, {0.7, -1.3});
        EXPECT_LT(res.max_rel_error, 1e-5) << name;
    }
}

/// Sphere in growing dimension with a random active box: L-BFGS-B must hit
/// the projection of the center onto the box.
class SphereDims : public ::testing::TestWithParam<int> {};

TEST_P(SphereDims, BoundedSphere) {
    const int n = GetParam();
    Objective sphere = [](const std::vector<double>& x, std::vector<double>& g) {
        g.resize(x.size());
        double f = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double c = 0.5 * static_cast<double>(i % 5) - 1.0;
            f += (x[i] - c) * (x[i] - c);
            g[i] = 2.0 * (x[i] - c);
        }
        return f;
    };
    const auto bounds = Bounds::uniform(n, -0.75, 0.75);
    const auto res =
        lbfgsb_minimize(sphere, std::vector<double>(n, 0.0), bounds, {.max_iterations = 300});
    for (int i = 0; i < n; ++i) {
        const double c = 0.5 * (i % 5) - 1.0;
        EXPECT_NEAR(res.x[i], std::clamp(c, -0.75, 0.75), 1e-6) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, SphereDims, ::testing::Values(1, 3, 10, 50, 200));

TEST(LbfgsBFunctions, MixedFiniteInfiniteBounds) {
    Bounds b;
    b.lower = {-Bounds::kInf, 0.5};
    b.upper = {0.0, Bounds::kInf};
    Objective q = [](const std::vector<double>& x, std::vector<double>& g) {
        g = {2.0 * (x[0] - 1.0), 2.0 * (x[1] + 1.0)};
        return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 1.0) * (x[1] + 1.0);
    };
    const auto res = lbfgsb_minimize(q, {-1.0, 2.0}, b);
    EXPECT_NEAR(res.x[0], 0.0, 1e-7);  // clipped from 1.0
    EXPECT_NEAR(res.x[1], 0.5, 1e-7);  // clipped from -1.0
}

TEST(LbfgsBFunctions, IllConditionedQuadratic) {
    // Curvatures spanning 6 orders of magnitude.
    Objective q = [](const std::vector<double>& x, std::vector<double>& g) {
        g.resize(x.size());
        double f = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double w = std::pow(10.0, static_cast<double>(i) * 1.5);
            f += 0.5 * w * x[i] * x[i];
            g[i] = w * x[i];
        }
        return f;
    };
    const auto res = lbfgsb_minimize(q, {1.0, 1.0, 1.0, 1.0, 1.0}, Bounds::unbounded(5),
                                     {.max_iterations = 2000, .max_evaluations = 20000});
    EXPECT_LT(res.f, 1e-10);
}

}  // namespace
}  // namespace qoc::optim
