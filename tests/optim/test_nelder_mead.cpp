#include "optim/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qoc::optim {
namespace {

double sphere(const std::vector<double>& x) {
    double f = 0.0;
    for (double v : x) f += v * v;
    return f;
}

double rosenbrock2(const std::vector<double>& x) {
    const double a = x[1] - x[0] * x[0];
    const double b = 1.0 - x[0];
    return 100.0 * a * a + b * b;
}

TEST(NelderMead, Sphere3D) {
    const auto res = nelder_mead_minimize(sphere, {1.0, -2.0, 0.7}, Bounds::unbounded(3));
    for (double v : res.x) EXPECT_NEAR(v, 0.0, 1e-4);
    EXPECT_LT(res.f, 1e-7);
}

TEST(NelderMead, Rosenbrock2D) {
    const auto res = nelder_mead_minimize(rosenbrock2, {-1.2, 1.0}, Bounds::unbounded(2),
                                          {.max_iterations = 5000, .max_evaluations = 20000});
    EXPECT_NEAR(res.x[0], 1.0, 1e-3);
    EXPECT_NEAR(res.x[1], 1.0, 2e-3);
}

TEST(NelderMead, RespectsBoxConstraints) {
    // Unconstrained min at origin; box excludes it.
    const auto res = nelder_mead_minimize(sphere, {0.8, 0.8}, Bounds::uniform(2, 0.5, 1.0));
    EXPECT_NEAR(res.x[0], 0.5, 1e-4);
    EXPECT_NEAR(res.x[1], 0.5, 1e-4);
    EXPECT_TRUE(Bounds::uniform(2, 0.5, 1.0).contains(res.x));
}

TEST(NelderMead, EvaluationBudgetRespected) {
    NelderMeadOptions opts;
    opts.max_evaluations = 50;
    const auto res = nelder_mead_minimize(rosenbrock2, {-1.2, 1.0}, Bounds::unbounded(2), opts);
    EXPECT_LE(res.evaluations, 55);  // a final shrink round may slightly overshoot
}

TEST(NelderMead, ShiftedQuadraticManyDims) {
    const std::size_t n = 6;
    auto f = [](const std::vector<double>& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double d = x[i] - 0.3 * static_cast<double>(i);
            s += (1.0 + static_cast<double>(i)) * d * d;
        }
        return s;
    };
    const auto res = nelder_mead_minimize(f, std::vector<double>(n, 1.0), Bounds::unbounded(n),
                                          {.max_iterations = 10000, .max_evaluations = 50000});
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(res.x[i], 0.3 * static_cast<double>(i), 5e-3) << "i=" << i;
    }
}

}  // namespace
}  // namespace qoc::optim
