/// \file characterize_backend.cpp
/// \brief The daily characterization workflow: measure T1, T2* (Ramsey),
///        T2 (echo) and the qubit detuning on the simulated backend, then
///        run process tomography of the default X gate -- the data stream
///        IBM's calibration publishes and the paper's drift study consumes.

#include <cstdio>

#include "device/characterization.hpp"
#include "device/drift_model.hpp"
#include "quantum/gates.hpp"
#include "rb/tomography.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::device;

    const DriftModel drift(ibmq_montreal(), 2026);
    const BackendConfig today = drift.device_on_day(3);
    PulseExecutor dev(today);
    const auto defaults = build_default_gates(dev);

    std::printf("characterizing %s (day 3 of the drift trajectory)\n\n",
                today.name.c_str());

    CharacterizationOptions opts;
    opts.max_delay_ns = 3.0 * today.qubit(0).t1;
    opts.shots = 8192;
    const DecayFit t1 = measure_t1(dev, defaults, 0, opts);
    std::printf("T1 (inversion recovery): %8.1f us  [device truth: %.1f us]\n",
                t1.value / 1000.0, today.qubit(0).t1 / 1000.0);

    // Ramsey window sized to today's (published) T2; dense sampling keeps
    // the fringe above Nyquist.
    CharacterizationOptions ropts;
    ropts.max_delay_ns = 1.2 * today.qubit(0).t2;
    ropts.n_points = 240;
    ropts.shots = 8192;
    double fringe = 0.0;
    const double ramp = 2.0 * M_PI * 8.0e-5;
    const DecayFit t2r = measure_t2_ramsey(dev, defaults, 0, ramp, &fringe, ropts);
    std::printf("T2* (Ramsey)           : %8.1f us  [device truth: %.1f us]\n",
                t2r.value / 1000.0, today.qubit(0).t2 / 1000.0);
    std::printf("|qubit detuning|       : %8.1f kHz [device truth: %.1f kHz]\n",
                std::abs(std::abs(fringe) - ramp) / (2.0 * M_PI) * 1e6,
                std::abs(today.qubit(0).detuning) / (2.0 * M_PI) * 1e6);

    CharacterizationOptions eopts = opts;
    eopts.max_delay_ns = 2.0 * today.qubit(0).t2;
    const DecayFit t2e = measure_t2_echo(dev, defaults, 0, eopts);
    std::printf("T2 (Hahn echo)         : %8.1f us\n\n", t2e.value / 1000.0);

    const auto x_super = dev.schedule_superop_1q(defaults.get("x", {0}), 0);
    const auto tomo = rb::process_tomography_1q(dev, defaults, x_super,
                                                quantum::gates::x(), 0, {.shots = 16384});
    std::printf("process tomography of the default X gate:\n");
    std::printf("  average gate fidelity : %.5f\n", tomo.avg_gate_fidelity);
    std::printf("  unitarity             : %.5f\n", tomo.unitarity);
    std::printf("  PTM diagonal          : %+0.3f %+0.3f %+0.3f %+0.3f\n",
                tomo.ptm(0, 0).real(), tomo.ptm(1, 1).real(), tomo.ptm(2, 2).real(),
                tomo.ptm(3, 3).real());
    return 0;
}
