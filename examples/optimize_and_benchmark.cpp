/// \file optimize_and_benchmark.cpp
/// \brief The paper's full single-qubit workflow, end to end:
///        1. import the backend description (simulated ibmq_montreal),
///        2. design an optimized X pulse against the nominal transmon model,
///        3. cast it into a custom calibration that shadows the default,
///        4. verify with a prepare-and-measure histogram,
///        5. characterize custom vs default with interleaved RB.
///
/// Steps 2 and 5 run as one `experiments::DesignPipeline` batch job: the
/// pipeline designs the pulse, picks the best candidate and characterizes
/// it against the default gate in a single call (sharing the reference RB
/// curve between the custom and default IRB runs).

#include <cstdio>

#include "device/calibration.hpp"
#include "experiments/design_pipeline.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::experiments;

    // 1. Backend: the simulated ibmq_montreal with daily-calibrated defaults.
    // The owning pipeline constructor builds the executor and calibrates the
    // default gates; the RB options apply to every characterization it runs.
    DesignPipelineOptions po;
    po.rb.lengths = {1, 200, 500, 1000, 1800, 2800};
    po.rb.seeds_per_length = 8;
    po.rb.shots = 8192;
    const DesignPipeline pipeline(device::ibmq_montreal(), po);
    const device::PulseExecutor& dev = pipeline.executor();
    std::printf("device: %s (qubit 0: %.3f GHz, T1 = %.0f us)\n",
                dev.config().name.c_str(), dev.config().qubit(0).frequency_ghz,
                dev.config().qubit(0).t1 / 1000.0);

    // 2+5. One batch job: design the X pulse on the nominal model (the
    // paper's 480 dt pulse) and characterize it with interleaved RB.
    GateJob1Q job;
    job.gate_name = "x";
    job.spec.target = quantum::gates::x();
    job.spec.duration_dt = 480;
    job.spec.n_timeslots = 48;
    const PipelineResult result = pipeline.run({job});
    const GateResult1Q& xres = result.gates[0];
    const DesignedGate& designed = xres.best();
    std::printf("designed X pulse: %zu dt (%.1f ns), model infidelity %.2e\n",
                designed.duration_dt,
                static_cast<double>(designed.duration_dt) * dev.config().dt,
                designed.model_fid_err);

    // 3+4. Custom calibration in a circuit; measure the qubit.
    const auto counts = state_histogram_1q(dev, pipeline.defaults(), "x", 0,
                                           &designed.schedule, 4096, 2022);
    print_histogram("custom X gate, |0> prepared and measured", counts);

    // 5. Interleaved randomized benchmarking, custom vs default.
    const GateComparison& cmp = xres.comparison;
    print_table("IRB comparison (X gate)",
                {"pulse", "IRB error rate", "EPC (reference RB)"},
                {{"custom (optimized)",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  format_error_rate(cmp.custom.reference.epc, cmp.custom.reference.epc_err)},
                 {"default (DRAG)",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  format_error_rate(cmp.standard.reference.epc,
                                    cmp.standard.reference.epc_err)}});
    std::printf("\nimprovement of custom over default: %.1f%%\n", cmp.improvement_percent);
    return 0;
}
