/// \file optimize_and_benchmark.cpp
/// \brief The paper's full single-qubit workflow, end to end:
///        1. import the backend description (simulated ibmq_montreal),
///        2. design an optimized X pulse against the nominal transmon model,
///        3. cast it into a custom calibration that shadows the default,
///        4. verify with a prepare-and-measure histogram,
///        5. characterize custom vs default with interleaved RB.

#include <cstdio>

#include "device/calibration.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::experiments;

    // 1. Backend: the simulated ibmq_montreal with daily-calibrated defaults.
    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    std::printf("device: %s (qubit 0: %.3f GHz, T1 = %.0f us)\n",
                dev.config().name.c_str(), dev.config().qubit(0).frequency_ghz,
                dev.config().qubit(0).t1 / 1000.0);

    // 2. Design the X pulse on the nominal model (the paper's 480 dt pulse).
    GateDesignSpec spec;
    spec.target = quantum::gates::x();
    spec.duration_dt = 480;
    spec.n_timeslots = 48;
    const DesignedGate designed =
        design_1q_gate(device::nominal_model(dev.config()), 0, "x", spec);
    std::printf("designed X pulse: %zu dt (%.1f ns), model infidelity %.2e\n",
                designed.duration_dt,
                static_cast<double>(designed.duration_dt) * dev.config().dt,
                designed.model_fid_err);

    // 3+4. Custom calibration in a circuit; measure the qubit.
    const auto counts =
        state_histogram_1q(dev, defaults, "x", 0, &designed.schedule, 4096, 2022);
    print_histogram("custom X gate, |0> prepared and measured", counts);

    // 5. Interleaved randomized benchmarking, custom vs default.
    rb::Clifford1Q group;
    rb::RbOptions opts;
    opts.lengths = {1, 200, 500, 1000, 1800, 2800};
    opts.seeds_per_length = 8;
    opts.shots = 8192;
    const GateComparison cmp =
        compare_1q_gate(dev, defaults, "x", 0, designed.schedule, group, opts);

    print_table("IRB comparison (X gate)",
                {"pulse", "IRB error rate", "EPC (reference RB)"},
                {{"custom (optimized)",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  format_error_rate(cmp.custom.reference.epc, cmp.custom.reference.epc_err)},
                 {"default (DRAG)",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  format_error_rate(cmp.standard.reference.epc,
                                    cmp.standard.reference.epc_err)}});
    std::printf("\nimprovement of custom over default: %.1f%%\n", cmp.improvement_percent);
    return 0;
}
