/// \file cnot_cr_design.cpp
/// \brief Two-qubit pulse design: synthesize a CNOT through the effective
///        cross-resonance model (paper Eq. 3), execute it on the simulated
///        device and compare against the default echoed-CR CX -- including
///        the paper's Fig. 8 style state histograms.

#include <cstdio>

#include "device/calibration.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::experiments;

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);

    // Channel-faithful CX design: controls are the physical channels D0, D1
    // and the CR channel U0 (which mixes ZX with IX and crosstalk).
    CxDesignSpec spec;
    spec.duration_dt = 800;
    spec.n_timeslots = 40;
    const DesignedCx designed = design_cx_gate(device::nominal_model(dev.config()), spec);
    std::printf("designed CX: %zu dt (%.0f ns), model infidelity %.2e\n",
                designed.duration_dt,
                static_cast<double>(designed.duration_dt) * dev.config().dt,
                designed.model_fid_err);

    // Direct fidelities on the device.
    const auto custom_sup = dev.schedule_superop_2q(designed.schedule);
    const auto default_sup = dev.schedule_superop_2q(defaults.get("cx", {0, 1}));
    std::printf("device avg-gate fidelity: custom %.5f, default (echoed CR) %.5f\n",
                quantum::average_gate_fidelity_superop(quantum::gates::cx(), custom_sup),
                quantum::average_gate_fidelity_superop(quantum::gates::cx(), default_sup));

    // Paper Fig. 8 style check: X on control then CX -> expect |11>.
    print_histogram("x(0); cx(0,1) with the CUSTOM pulse",
                    state_histogram_cx(dev, defaults, &designed.schedule, 4096, 5));
    print_histogram("x(0); cx(0,1) with the DEFAULT pulse",
                    state_histogram_cx(dev, defaults, nullptr, 4096, 6));

    // Print the three channel waveforms (paper Fig. 9).
    const std::size_t n = designed.schedule.total_duration();
    print_waveform("D0", designed.schedule.channel_samples(pulse::drive_channel(0), n));
    print_waveform("D1", designed.schedule.channel_samples(pulse::drive_channel(1), n));
    print_waveform("U0", designed.schedule.channel_samples(pulse::control_channel(0), n));
    return 0;
}
