/// \file calibration_drift_study.cpp
/// \brief The paper's Section 4 experiment: take one optimized pulse and
///        run it on the (drifting) device over a week.  Daily recalibration
///        keeps the default gates matched to the hardware while the fixed
///        custom pulse -- and the readout -- wander, so histograms
///        fluctuate while the IRB gate error stays deceptively flat.
///
/// The one-time pulse design runs through a design-only
/// `experiments::DesignPipeline`; each simulated day then gets its own
/// pipeline bound to that day's drifted device, whose `irb_custom_1q`
/// measures the fixed pulse against the day's shared reference RB curve.

#include <cstdio>

#include "device/calibration.hpp"
#include "device/drift_model.hpp"
#include "experiments/design_pipeline.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::experiments;

    const device::BackendConfig nominal = device::ibmq_montreal();
    const device::DriftModel drift(nominal, /*seed=*/2022);

    // Optimize the sqrt(X) pulse ONCE against the nominal model: a
    // design-only pipeline (characterization is skipped entirely).
    GateJob1Q job;
    job.gate_name = "sx";
    job.spec.target = quantum::gates::sx();
    job.spec.duration_dt = 736;
    job.spec.n_timeslots = 48;
    job.spec.use_y_control = false;
    job.spec.model = DesignModel::kThreeLevelClosed;
    DesignPipelineOptions design_po;
    design_po.characterize = false;
    const DesignPipeline designer(nominal, design_po);
    const PipelineResult designed = designer.run({job});
    const DesignedGate& fixed_pulse = designed.gates[0].best();
    std::printf("sqrt(X) optimized once (model infidelity %.2e); now running it daily.\n\n",
                fixed_pulse.model_fid_err);

    DesignPipelineOptions daily_po;
    daily_po.rb.lengths = {1, 300, 800, 1600, 2600};
    daily_po.rb.seeds_per_length = 6;
    daily_po.rb.shots = 4096;

    std::printf("%-5s %-6s %-12s %-16s %-14s\n", "day", "jump?", "P(1) [%]",
                "IRB gate error", "readout p01");
    for (int day = 0; day < 7; ++day) {
        const device::BackendConfig today = drift.device_on_day(day);
        device::PulseExecutor dev(today);
        // IBM recalibrates defaults daily; the custom pulse stays fixed.
        const auto defaults = device::build_default_gates(dev);
        const auto counts = state_histogram_1q(dev, defaults, "sx", 0,
                                               &fixed_pulse.schedule, 4096, 100 + day);
        const DesignPipeline daily(dev, defaults, daily_po);
        const auto irb = daily.irb_custom_1q("sx", 0, fixed_pulse.schedule);
        std::printf("%-5d %-6s %-12.2f %-16s %-14.4f\n", day,
                    drift.is_jump_day(day) ? "yes" : "no",
                    100.0 * counts.probability("1"),
                    format_error_rate(irb.gate_error, irb.gate_error_err).c_str(),
                    today.qubit(0).readout_p01);
    }
    std::printf("\nNote the paper's conclusion: the histogram wanders day to day while\n"
                "the IRB error barely moves -- IRB is SPAM-insensitive, so readout\n"
                "drift is invisible to it.\n");
    return 0;
}
