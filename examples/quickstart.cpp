/// \file quickstart.cpp
/// \brief Minimal qoc usage: synthesize an X-gate pulse with second-order
///        GRAPE (L-BFGS-B) on a two-level qubit, exactly like the paper's
///        QuTiP `pulseoptim` workflow.
///
/// Build & run:  ./examples/quickstart

#include <cstdio>

#include "control/pulseoptim.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

int main() {
    using namespace qoc;

    // The control problem: H(t) = u_x(t) sx/2 + u_y(t) sy/2, target X,
    // 32 piecewise-constant slots over 50 ns, amplitudes within +-1.
    control::PulseOptimSpec spec;
    spec.h_drift = linalg::Mat(2, 2);  // rotating frame: zero drift
    spec.h_ctrls = {0.5 * quantum::sigma_x(), 0.5 * quantum::sigma_y()};
    spec.u_target = quantum::gates::x();
    spec.n_timeslots = 32;
    spec.evo_time = 50.0;  // ns
    spec.initial_pulse = control::InitialPulseType::kDrag;
    spec.initial_scale = 0.1;

    const control::PulseOptimResult result = control::pulse_optim(spec);

    std::printf("qoc quickstart: X-gate pulse synthesis\n");
    std::printf("  initial infidelity : %.3e\n", result.initial_fid_err);
    std::printf("  final infidelity   : %.3e\n", result.final_fid_err);
    std::printf("  iterations         : %d (L-BFGS-B)\n", result.iterations);
    std::printf("  stop reason        : %s\n", optim::to_string(result.reason).c_str());

    std::printf("\n  optimized amplitudes (slot: u_x, u_y):\n");
    for (std::size_t k = 0; k < result.final_amps.size(); k += 4) {
        std::printf("    %2zu: %+.4f  %+.4f\n", k, result.final_amps[k][0],
                    result.final_amps[k][1]);
    }
    experiments::print_metrics_summary();  // no-op unless QOC_METRICS is set
    return result.final_fid_err < 1e-6 ? 0 : 1;
}
