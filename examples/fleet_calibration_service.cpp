/// \file fleet_calibration_service.cpp
/// \brief Resident calibration service over a drifting device fleet: N
///        simulated backends drift over D days while a deterministic request
///        stream hits the content-addressed pulse cache.  Day 0 designs
///        everything; later days are hit-dominated, with drift past
///        tolerance demoting entries to suspect and cheap IRB deciding
///        between revalidation and a full re-design.
///
/// Environment knobs (all optional):
///   QOC_FLEET_DEVICES   number of simulated devices        (default 2)
///   QOC_FLEET_DAYS      days of drift to simulate          (default 3)
///   QOC_FLEET_REQUESTS  requests per day across the fleet  (default 24)
///   QOC_FLEET_STORE     pulse-store JSONL path for a warm restart
///                       ("" = in-memory only)
///
/// The run is bitwise deterministic: re-running with the same knobs (at any
/// QOC_THREADS width) reproduces the same response digest, and a saved
/// store file is byte-stable across save/load/save.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/fleet_driver.hpp"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    const long parsed = std::atol(v);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

int main() {
    using namespace qoc;

    service::FleetOptions opts;
    opts.n_devices = env_size("QOC_FLEET_DEVICES", 2);
    opts.n_days = static_cast<int>(env_size("QOC_FLEET_DAYS", 3));
    opts.requests_per_day = env_size("QOC_FLEET_REQUESTS", 24);
    opts.service.amp_bound = 0.5;
    if (const char* store = std::getenv("QOC_FLEET_STORE"); store != nullptr) {
        opts.store_path = store;
    }

    std::printf("fleet: %zu device(s), %d day(s), %zu request(s)/day\n",
                opts.n_devices, opts.n_days, opts.requests_per_day);

    const service::FleetResult result = service::run_fleet(opts);

    const auto& s = result.stats;
    std::printf("\nrequests served: %zu   response digest: %016llx\n",
                result.responses.size(),
                static_cast<unsigned long long>(result.response_digest));
    std::printf("  cache hits         %llu\n", static_cast<unsigned long long>(s.hits));
    std::printf("  cache misses       %llu\n", static_cast<unsigned long long>(s.misses));
    std::printf("  demoted (drift)    %llu\n", static_cast<unsigned long long>(s.demoted));
    std::printf("  revalidated (IRB)  %llu\n",
                static_cast<unsigned long long>(s.revalidations));
    std::printf("  re-designed        %llu\n", static_cast<unsigned long long>(s.redesigns));
    std::printf("  shed               %llu\n", static_cast<unsigned long long>(s.shed));
    std::printf("  store entries      %zu\n", result.store_size);
    if (!opts.store_path.empty()) {
        std::printf("  store saved to     %s\n", opts.store_path.c_str());
    }
    const double total = static_cast<double>(s.hits + s.misses + s.revalidations);
    if (total > 0.0) {
        std::printf("steady-state hit rate: %.1f%%\n",
                    100.0 * static_cast<double>(s.hits) / total);
    }
    return 0;
}
