/// \file qoc_design.cpp
/// \brief Command-line pulse designer: the paper's workflow as a tool.
///
///   qoc_design --gate x --backend montreal --duration 480 --out pulse.csv
///   qoc_design --gate sx --backend toronto --duration 144 --model closed3
///   qoc_design --gate cx --backend montreal --irb
///
/// Designs the pulse on the backend's nominal model, reports the model and
/// device infidelity, optionally runs the IRB comparison against the
/// default gate, and writes the optimized amplitudes as CSV.

#include <cstdio>
#include <cstring>
#include <string>

#include "device/calibration.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "io/io.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"

namespace {

using namespace qoc;
using namespace qoc::experiments;

void usage() {
    std::printf(
        "qoc_design -- GRAPE pulse design for simulated IBM Q backends\n\n"
        "usage: qoc_design [options]\n"
        "  --gate <x|sx|h|cx>       gate to synthesize (default x)\n"
        "  --backend <montreal|toronto|boeblingen|rome>   (default montreal)\n"
        "  --duration <dt>          pulse length in dt units (default: paper's)\n"
        "  --slots <n>              GRAPE timeslots (default 48)\n"
        "  --model <open3|closed3|open2|closed2>  design model (default open3)\n"
        "  --seed <drag|gaussian|gaussian_square|sine>  seed pulse\n"
        "  --out <file.csv>         write optimized amplitudes\n"
        "  --irb                    run the IRB comparison vs the default gate\n"
        "  --help                   this message\n");
}

device::BackendConfig backend_by_name(const std::string& name) {
    if (name == "montreal") return device::ibmq_montreal();
    if (name == "toronto") return device::ibmq_toronto();
    if (name == "boeblingen") return device::ibmq_boeblingen();
    if (name == "rome") return device::ibmq_rome();
    throw std::runtime_error("unknown backend: " + name);
}

}  // namespace

int main(int argc, char** argv) {
    std::string gate = "x", backend = "montreal", out_path, model = "open3", seed = "drag";
    std::size_t duration = 0, slots = 48;
    bool run_irb = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
            return argv[++i];
        };
        try {
            if (arg == "--gate") gate = next();
            else if (arg == "--backend") backend = next();
            else if (arg == "--duration") duration = std::stoul(next());
            else if (arg == "--slots") slots = std::stoul(next());
            else if (arg == "--model") model = next();
            else if (arg == "--seed") seed = next();
            else if (arg == "--out") out_path = next();
            else if (arg == "--irb") run_irb = true;
            else if (arg == "--help") { usage(); return 0; }
            else { std::fprintf(stderr, "unknown option %s\n", arg.c_str()); usage(); return 2; }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }

    try {
        const device::BackendConfig cfg = backend_by_name(backend);
        device::PulseExecutor dev(cfg);
        const auto nominal = device::nominal_model(cfg);
        const auto defaults = device::build_default_gates(dev);
        rb::RbOptions rb_opts;
        rb_opts.seeds_per_length = 8;

        if (gate == "cx") {
            CxDesignSpec spec;
            if (duration != 0) spec.duration_dt = duration;
            spec.n_timeslots = slots;
            if (seed == "sine") spec.seed = control::InitialPulseType::kSine;
            const DesignedCx d = design_cx_gate(nominal, spec);
            std::printf("designed cx on %s: %zu dt, model infidelity %.3e\n", backend.c_str(),
                        d.duration_dt, d.model_fid_err);
            const auto sup = dev.schedule_superop_2q(d.schedule);
            std::printf("device avg-gate infidelity: %.3e\n",
                        1.0 - quantum::average_gate_fidelity_superop(quantum::gates::cx(), sup));
            if (!out_path.empty()) {
                io::save_amplitudes(out_path, d.optim.final_amps);
                std::printf("amplitudes written to %s\n", out_path.c_str());
            }
            if (run_irb) {
                rb::Clifford1Q c1;
                rb::Clifford2Q c2(c1);
                rb_opts.lengths = {1, 8, 16, 32, 56, 88};
                const auto cmp = compare_cx_gate(dev, defaults, d.schedule, c1, c2, rb_opts);
                std::printf("IRB: custom %s vs default %s (improvement %.1f%%)\n",
                            format_error_rate(cmp.custom.gate_error,
                                              cmp.custom.gate_error_err).c_str(),
                            format_error_rate(cmp.standard.gate_error,
                                              cmp.standard.gate_error_err).c_str(),
                            cmp.improvement_percent);
            }
            return 0;
        }

        GateDesignSpec spec;
        if (gate == "x") { spec.target = quantum::gates::x(); spec.duration_dt = 480; }
        else if (gate == "sx") {
            spec.target = quantum::gates::sx();
            spec.duration_dt = 736;
            spec.use_y_control = false;
            spec.model = DesignModel::kThreeLevelClosed;
        } else if (gate == "h") { spec.target = quantum::gates::h(); spec.duration_dt = 1216; }
        else { std::fprintf(stderr, "unknown gate %s\n", gate.c_str()); return 2; }
        if (duration != 0) spec.duration_dt = duration;
        spec.n_timeslots = slots;
        if (model == "closed3") spec.model = DesignModel::kThreeLevelClosed;
        else if (model == "open3") { /* default for x/h */ }
        else if (model == "open2") spec.model = DesignModel::kTwoLevelOpen;
        else if (model == "closed2") spec.model = DesignModel::kTwoLevelClosed;
        if (seed == "gaussian") spec.seed = control::InitialPulseType::kGaussian;
        else if (seed == "gaussian_square") spec.seed = control::InitialPulseType::kGaussianSquare;
        else if (seed == "sine") spec.seed = control::InitialPulseType::kSine;

        const DesignedGate d = design_1q_gate(nominal, 0, gate, spec);
        std::printf("designed %s on %s: %zu dt (%.1f ns), model infidelity %.3e\n",
                    gate.c_str(), backend.c_str(), d.duration_dt,
                    static_cast<double>(d.duration_dt) * cfg.dt, d.model_fid_err);
        const auto sup = dev.schedule_superop_1q(d.schedule, 0);
        std::printf("device subspace infidelity: %.3e\n",
                    1.0 - quantum::average_gate_fidelity_subspace(spec.target, sup,
                                                                  cfg.levels));
        if (!out_path.empty()) {
            io::save_amplitudes(out_path, d.optim.final_amps);
            std::printf("amplitudes written to %s\n", out_path.c_str());
        }
        if (run_irb) {
            rb::Clifford1Q c1;
            const auto cmp = compare_1q_gate(dev, defaults, gate, 0, d.schedule, c1, rb_opts);
            std::printf("IRB: custom %s vs default %s (improvement %.1f%%)\n",
                        format_error_rate(cmp.custom.gate_error,
                                          cmp.custom.gate_error_err).c_str(),
                        format_error_rate(cmp.standard.gate_error,
                                          cmp.standard.gate_error_err).c_str(),
                        cmp.improvement_percent);
        }
        print_metrics_summary();  // no-op unless QOC_METRICS is set
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
