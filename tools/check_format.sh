#!/usr/bin/env bash
# Checks that the C++ tree is clean under .clang-format (no files rewritten).
#
#   tools/check_format.sh [clang-format-binary]
#
# Exits 0 when every file is already formatted, 1 with a unified diff summary
# otherwise.  When clang-format is not installed (this repo's dev container
# ships only gcc) the script skips with exit 0 so local workflows keep
# working; CI installs clang-format and gets the real check.
set -euo pipefail
cd "$(dirname "$0")/.."

fmt="${1:-}"
if [[ -z "$fmt" ]]; then
    for cand in clang-format clang-format-18 clang-format-17 clang-format-16 clang-format-15; do
        if command -v "$cand" >/dev/null 2>&1; then
            fmt="$cand"
            break
        fi
    done
fi
if [[ -z "$fmt" ]]; then
    echo "check_format: clang-format not found; skipping (install it to run the check)" >&2
    exit 0
fi

mapfile -t files < <(git ls-files 'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' 'tests/*.hpp' \
    'bench/*.cpp' 'examples/*.cpp' 'tools/*.cpp' 'tools/*.hpp')

bad=0
for f in "${files[@]}"; do
    if ! diff -u "$f" <("$fmt" --style=file "$f") >/tmp/qoc_format_diff 2>&1; then
        echo "== needs formatting: $f"
        head -40 /tmp/qoc_format_diff
        bad=1
    fi
done

if [[ "$bad" -ne 0 ]]; then
    echo ""
    echo "check_format: files above differ from .clang-format output." >&2
    echo "Fix with: $fmt -i <file>..." >&2
    exit 1
fi
echo "check_format: all $(printf '%d' "${#files[@]}") files clean ($($fmt --version))"
