#pragma once
/// qoc_lint lexer: a self-contained C++ tokenizer (no libclang) good enough
/// for project-invariant linting.  It understands comments (kept separately
/// for suppression parsing), string/char literals including raw strings,
/// pp-numbers, identifiers, and the two multi-char punctuators the rules
/// pattern-match on (`::`, `->`); everything else is single-char punctuation.
/// Preprocessor lines are tokenized like ordinary code (`#` is a punctuator),
/// which is exactly what the `#pragma omp` / `#include <omp.h>` rules need.

#include <string>
#include <vector>

namespace qoc_lint {

enum class TokKind {
    kIdent,   ///< identifiers and keywords (rules distinguish by text)
    kNumber,  ///< pp-number (covers ints, floats, hex, digit separators)
    kString,  ///< string literal, text WITHOUT quotes (raw strings unescaped)
    kChar,    ///< character literal, text without quotes
    kPunct,   ///< punctuation; `::` and `->` are single tokens
};

struct Token {
    TokKind kind;
    std::string text;
    int line;  ///< 1-based line of the token's first character
};

struct Comment {
    std::string text;  ///< without the // or /* */ delimiters, trimmed
    int line;          ///< 1-based line the comment starts on
    bool trailing;     ///< true when code precedes it on the same line
};

struct LexedFile {
    std::string path;
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/// Tokenizes `source`.  Never throws on malformed input: unterminated
/// literals are closed at end-of-file so the rules still see partial files.
LexedFile lex(std::string path, const std::string& source);

}  // namespace qoc_lint
