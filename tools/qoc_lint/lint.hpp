#pragma once
/// qoc_lint: project-invariant static analysis for the qoc tree.
///
/// Generic tooling (clang-tidy, sanitizers) cannot see the invariants this
/// codebase's results rest on: bitwise determinism at any thread count,
/// zero-allocation `_into` kernels, OpenMP confined to src/runtime, dense
/// d^2 x d^2 superoperators only inside the structured-kernel escape hatch,
/// stable iteration order in everything that serializes, and telemetry enum
/// identifiers in sync with their JSONL emission strings.  Each of those is
/// a named rule here, checked over a self-contained token stream (no
/// libclang, so the tool builds wherever CI does).
///
/// Suppressions are per-site and must be justified:
///     // qoc-lint-allow(rule-name): why this site is exempt
/// on the flagged line or the line directly above it.  An allow without a
/// justification does not suppress -- it is itself a finding
/// (suppression-without-justification), so exemptions stay auditable.
///
/// Whole-file opt-in to the hot-path allocation rule:
///     // qoc-lint: hot-path

#include <string>
#include <vector>

namespace qoc_lint {

struct Finding {
    std::string rule;
    std::string file;  ///< path as reported (relative to Options::root)
    int line = 0;
    std::string message;
};

struct RuleInfo {
    const char* name;
    const char* description;
};

/// Registered rules, in reporting order.
const std::vector<RuleInfo>& rules();

struct Options {
    /// Files or directories to scan.  Directories are walked recursively for
    /// *.cpp / *.hpp / *.cc / *.cxx / *.h; `build*`, `.git` and
    /// `lint_fixtures` subdirectories are skipped (a fixture tree can still
    /// be scanned by passing it as an explicit path).
    std::vector<std::string> paths;

    /// Repo root: reported paths are made relative to it, and the per-rule
    /// path scopes (src/, src/runtime/, ...) are evaluated on that relative
    /// form.  Empty: paths are reported as given and scoped as given.
    std::string root;

    /// Apply every rule to every scanned file, ignoring path scopes.  Used
    /// by the fixture tests, where scope is part of the fixture layout.
    bool ignore_scopes = false;

    /// When non-empty, only these rules run (suppression auditing always
    /// runs).  `disabled` removes rules from whichever set is active.
    std::vector<std::string> enabled;
    std::vector<std::string> disabled;
};

/// Runs every active rule over every scanned file and returns the surviving
/// findings sorted by (file, line, rule).  Justified suppressions have been
/// applied; unjustified or unknown-rule suppressions appear as findings.
std::vector<Finding> run(const Options& options);

/// Findings as a stable JSON document (sorted input order preserved).
std::string to_json(const std::vector<Finding>& findings);

}  // namespace qoc_lint
