/// qoc_lint CLI.
///
///   qoc_lint [options] [paths...]
///
///   --root <dir>      repo root; findings are reported relative to it and
///                     per-rule path scopes are evaluated there (default ".")
///   --json            machine-readable output (stable ordering)
///   --check           exit 1 when any finding survives (CI gate)
///   --rule <name>     run only this rule (repeatable)
///   --disable <name>  drop a rule from the active set (repeatable)
///   --no-scope        apply every rule to every file (fixture testing)
///   --list-rules      print the rule catalogue and exit
///
/// With no paths, scans src/ tools/ tests/ bench/ examples/ under --root.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json] [--check] [--rule NAME]... "
                 "[--disable NAME]... [--no-scope] [--list-rules] [paths...]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    qoc_lint::Options opt;
    opt.root = ".";
    bool json = false;
    bool check = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--no-scope") {
            opt.ignore_scopes = true;
        } else if (arg == "--list-rules") {
            for (const qoc_lint::RuleInfo& r : qoc_lint::rules()) {
                std::printf("%-40s %s\n", r.name, r.description);
            }
            return 0;
        } else if (arg == "--root") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            opt.root = v;
        } else if (arg == "--rule") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            opt.enabled.emplace_back(v);
        } else if (arg == "--disable") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            opt.disabled.emplace_back(v);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "qoc_lint: unknown option '%s'\n", arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (paths.empty()) {
        for (const char* sub : {"src", "tools", "tests", "bench", "examples"}) {
            const std::filesystem::path p = std::filesystem::path(opt.root) / sub;
            std::error_code ec;
            if (std::filesystem::is_directory(p, ec)) paths.push_back(p.generic_string());
        }
    }
    opt.paths = paths;

    const std::vector<qoc_lint::Finding> findings = qoc_lint::run(opt);
    if (json) {
        std::fputs(qoc_lint::to_json(findings).c_str(), stdout);
    } else {
        for (const qoc_lint::Finding& f : findings) {
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                        f.message.c_str());
        }
        std::fprintf(stderr, "qoc_lint: %zu finding%s\n", findings.size(),
                     findings.size() == 1 ? "" : "s");
    }
    return (check && !findings.empty()) ? 1 : 0;
}
