#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace qoc_lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// The linter's own containers are deliberately ordered (std::map/std::set):
// findings and JSON output must be byte-stable run to run, the same contract
// rule `unordered-iteration-in-serialization` enforces on the tree.

bool starts_with(const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, const char* suffix) {
    const std::string suf(suffix);
    return s.size() >= suf.size() && s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}
std::string lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}
std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return s.substr(b, e - b);
}

// --- suppressions and file markers --------------------------------------

struct Allow {
    std::string rule;
    bool justified = false;
    int line = 0;
};

struct CommentMeta {
    std::vector<Allow> allows;
    bool hot_path_file = false;
};

CommentMeta parse_comments(const LexedFile& fx) {
    CommentMeta meta;
    for (const Comment& c : fx.comments) {
        // Anchored at the start of the comment text, so prose *about* the
        // syntax (doc comments, fixture commentary) is not a suppression.
        if (starts_with(c.text, "qoc-lint: hot-path")) meta.hot_path_file = true;
        if (!starts_with(c.text, "qoc-lint-allow(")) continue;
        const std::size_t open = std::string("qoc-lint-allow(").size();
        const std::size_t close = c.text.find(')', open);
        if (close == std::string::npos) continue;
        Allow a;
        a.rule = trim(c.text.substr(open, close - open));
        a.line = c.line;
        std::string rest = c.text.substr(close + 1);
        const std::size_t colon = rest.find(':');
        a.justified = colon != std::string::npos && !trim(rest.substr(colon + 1)).empty();
        meta.allows.push_back(std::move(a));
    }
    return meta;
}

// --- token helpers -------------------------------------------------------

bool tok_is(const Token& t, const char* text) { return t.text == text; }
bool ident_is(const Token& t, const char* text) {
    return t.kind == TokKind::kIdent && t.text == text;
}

/// Index of the matching `close` for the `open` punctuator at `i`, or kNpos.
std::size_t match_forward(const std::vector<Token>& ts, std::size_t i, const char* open,
                          const char* close) {
    int depth = 0;
    for (std::size_t k = i; k < ts.size(); ++k) {
        if (ts[k].kind != TokKind::kPunct) continue;
        if (ts[k].text == open) ++depth;
        if (ts[k].text == close && --depth == 0) return k;
    }
    return kNpos;
}

// --- function-definition extraction --------------------------------------

struct FnDef {
    std::string name;
    std::size_t body_open = 0;   ///< index of the `{` token
    std::size_t body_close = 0;  ///< index of the matching `}`
    int line = 0;
};

const std::set<std::string>& control_keywords() {
    static const std::set<std::string> kw = {"if",     "for",    "while",  "switch",
                                            "catch",  "return", "sizeof", "alignof",
                                            "constexpr", "decltype", "static_assert", "assert",
                                            "throw",  "new",    "delete", "co_return"};
    return kw;
}

/// Heuristic scan for function definitions: `name ( ... ) <decoration> {`.
/// The decoration between `)` and `{` may contain cv/ref qualifiers,
/// noexcept, trailing return types and constructor-initializer lists; a `;`,
/// `=`, `}` or unbalanced `)` before the `{` rejects the candidate (calls,
/// declarations, `= default`).  Good enough for rule scoping; nested lambdas
/// are intentionally not modeled.
std::vector<FnDef> extract_functions(const std::vector<Token>& ts) {
    std::vector<FnDef> fns;
    const std::size_t n = ts.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (ts[i].kind != TokKind::kIdent || !tok_is(ts[i + 1], "(")) continue;
        if (control_keywords().count(ts[i].text) != 0) continue;
        const std::size_t rparen = match_forward(ts, i + 1, "(", ")");
        if (rparen == kNpos) continue;
        std::size_t k = rparen + 1;
        bool found = false;
        while (k < n) {
            const Token& t = ts[k];
            if (t.kind == TokKind::kPunct) {
                if (t.text == "{") {
                    found = true;
                    break;
                }
                if (t.text == ";" || t.text == "=" || t.text == "}" || t.text == ")") break;
                if (t.text == "(") {
                    const std::size_t m = match_forward(ts, k, "(", ")");
                    if (m == kNpos) break;
                    k = m + 1;
                    continue;
                }
            }
            ++k;
        }
        if (!found) continue;
        const std::size_t close = match_forward(ts, k, "{", "}");
        if (close == kNpos) continue;
        fns.push_back(FnDef{ts[i].text, k, close, ts[i].line});
    }
    return fns;
}

// --- rule context --------------------------------------------------------

struct FileCtx {
    const LexedFile& fx;
    std::string rel;  ///< path relative to the scan root, '/'-separated
    bool hot_file = false;
    const std::vector<FnDef>& fns;
};

void add(std::vector<Finding>& out, const FileCtx& ctx, const char* rule, int line,
         std::string message) {
    out.push_back(Finding{rule, ctx.rel, line, std::move(message)});
}

// --- rule: determinism-wall-clock ----------------------------------------

bool scope_src(const std::string& rel) { return starts_with(rel, "src/"); }

void rule_wall_clock(const FileCtx& ctx, std::vector<Finding>& out) {
    static const std::set<std::string> kAlways = {
        "high_resolution_clock", "system_clock",  "steady_clock", "random_device",
        "gettimeofday",          "clock_gettime", "timespec_get"};
    static const std::set<std::string> kCallOnly = {"rand", "srand", "clock"};
    const std::vector<Token>& ts = ctx.fx.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::kIdent) continue;
        const bool member =
            i > 0 && ts[i - 1].kind == TokKind::kPunct &&
            (ts[i - 1].text == "." || ts[i - 1].text == "->");
        if (member) continue;  // a field named e.g. `clock` on a user type
        const bool call = i + 1 < ts.size() && tok_is(ts[i + 1], "(");
        if (kAlways.count(ts[i].text) != 0 || (call && kCallOnly.count(ts[i].text) != 0)) {
            add(out, ctx, "determinism-wall-clock", ts[i].line,
                "'" + ts[i].text +
                    "' is a nondeterministic clock/RNG source; the RB/IRB curves and replay "
                    "digests require bitwise reproducibility -- telemetry-only sites need a "
                    "justified qoc-lint-allow");
        }
    }
}

// --- rule: no-omp-outside-runtime ----------------------------------------

bool scope_omp(const std::string& rel) {
    return starts_with(rel, "src/") && !starts_with(rel, "src/runtime/");
}

void rule_omp(const FileCtx& ctx, std::vector<Finding>& out) {
    const std::vector<Token>& ts = ctx.fx.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (tok_is(ts[i], "#") && i + 2 < ts.size() && ident_is(ts[i + 1], "pragma") &&
            ident_is(ts[i + 2], "omp")) {
            add(out, ctx, "no-omp-outside-runtime", ts[i].line,
                "'#pragma omp' outside src/runtime: parallelism goes through "
                "qoc::runtime::TaskPool (bitwise-identical at any pool width)");
            continue;
        }
        if (tok_is(ts[i], "#") && i + 1 < ts.size() && ident_is(ts[i + 1], "include")) {
            const bool quoted = i + 2 < ts.size() && ts[i + 2].kind == TokKind::kString &&
                                ts[i + 2].text == "omp.h";
            const bool angled = i + 6 < ts.size() && tok_is(ts[i + 2], "<") &&
                                ident_is(ts[i + 3], "omp") && tok_is(ts[i + 4], ".") &&
                                ident_is(ts[i + 5], "h") && tok_is(ts[i + 6], ">");
            if (quoted || angled) {
                add(out, ctx, "no-omp-outside-runtime", ts[i].line,
                    "'#include <omp.h>' outside src/runtime: only the TaskPool sizing "
                    "shim may talk to the OpenMP runtime");
            }
            continue;
        }
        if (ts[i].kind == TokKind::kIdent && starts_with(ts[i].text, "omp_")) {
            add(out, ctx, "no-omp-outside-runtime", ts[i].line,
                "OpenMP runtime call '" + ts[i].text +
                    "' outside src/runtime: use qoc::runtime sizing/parallel_for instead");
        }
    }
}

// --- rule: hot-path-alloc -------------------------------------------------

void scan_hot_range(const FileCtx& ctx, std::size_t begin, std::size_t end,
                    const std::string& where, std::vector<Finding>& out) {
    // `resize` is deliberately absent: `out.resize(shape)` at the top of an
    // `_into` kernel is the documented shape-adapt idiom, and the runtime
    // alloc guard (tests/analysis) pins it to zero allocations after warmup.
    // Everything here grows capacity element-wise -- never legitimate in a
    // hot path.
    static const std::set<std::string> kGrowth = {"push_back", "emplace_back", "reserve",
                                                  "insert",    "emplace",      "append",
                                                  "assign",    "shrink_to_fit"};
    static const std::set<std::string> kCAlloc = {"malloc", "calloc", "realloc", "strdup"};
    const std::vector<Token>& ts = ctx.fx.tokens;
    for (std::size_t i = begin; i < end && i < ts.size(); ++i) {
        const Token& t = ts[i];
        if (t.kind != TokKind::kIdent) continue;
        const bool prev_member = i > 0 && ts[i - 1].kind == TokKind::kPunct &&
                                 (ts[i - 1].text == "." || ts[i - 1].text == "->");
        const bool prev_equals = i > 0 && tok_is(ts[i - 1], "=");
        const bool call = i + 1 < end && tok_is(ts[i + 1], "(");
        // `= delete`d declarations are not allocations.
        if (t.text == "new" || (t.text == "delete" && !prev_equals)) {
            add(out, ctx, "hot-path-alloc", t.line,
                "operator " + t.text + " in " + where +
                    ": hot paths are zero-allocation (lease scratch from "
                    "runtime::WorkspacePool or take caller-owned buffers)");
            continue;
        }
        if (prev_member && call && kGrowth.count(t.text) != 0) {
            add(out, ctx, "hot-path-alloc", t.line,
                "container growth '." + t.text + "()' in " + where +
                    ": size buffers before entering the hot path");
            continue;
        }
        if (!prev_member && call && kCAlloc.count(t.text) != 0) {
            add(out, ctx, "hot-path-alloc", t.line, "'" + t.text + "' in " + where);
            continue;
        }
        if (ident_is(t, "std") && i + 2 < end && tok_is(ts[i + 1], "::") &&
            ts[i + 2].kind == TokKind::kIdent) {
            const std::string& name = ts[i + 2].text;
            const bool deref_only = i + 3 < end && ts[i + 3].kind == TokKind::kPunct &&
                                    (ts[i + 3].text == "&" || ts[i + 3].text == "*" ||
                                     ts[i + 3].text == "::");
            if (name == "string" && !deref_only) {
                add(out, ctx, "hot-path-alloc", t.line,
                    "std::string temporary in " + where +
                        ": string construction allocates; format outside the kernel");
            } else if (name == "to_string") {
                add(out, ctx, "hot-path-alloc", t.line,
                    "std::to_string in " + where + ": allocates a temporary string");
            }
        }
    }
}

void rule_hot_path(const FileCtx& ctx, std::vector<Finding>& out) {
    if (ctx.hot_file) {
        scan_hot_range(ctx, 0, ctx.fx.tokens.size(), "a '// qoc-lint: hot-path' file", out);
        return;
    }
    for (const FnDef& fn : ctx.fns) {
        if (!ends_with(fn.name, "_into")) continue;
        scan_hot_range(ctx, fn.body_open + 1, fn.body_close, "'" + fn.name + "'", out);
    }
}

// --- rule: dense-superop-materialization ---------------------------------

bool scope_dense(const std::string& rel) {
    // The structured-kernel escape hatch: src/quantum/superop*.{hpp,cpp}
    // (dense construction, Kronecker factorization and the CSR/dense
    // dispatch) is the one place allowed to build d^2 x d^2 matrices.
    return starts_with(rel, "src/") && !starts_with(rel, "src/quantum/superop");
}

void rule_dense_superop(const FileCtx& ctx, std::vector<Finding>& out) {
    const std::vector<Token>& ts = ctx.fx.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::kIdent) continue;
        const bool mat_ctor = ts[i].text == "Mat" || ts[i].text == "CMat";
        // `Mat(n*n, n*n)` temporaries and `Mat name(n*n, n*n)` declarations.
        std::size_t lp = kNpos;
        if (tok_is(ts[i + 1], "(")) {
            lp = i + 1;
        } else if (mat_ctor && i + 2 < ts.size() && ts[i + 1].kind == TokKind::kIdent &&
                   tok_is(ts[i + 2], "(")) {
            lp = i + 2;
        }
        if (lp == kNpos) continue;
        const std::size_t close = match_forward(ts, lp, "(", ")");
        if (close == kNpos) continue;
        // (a) vectorization-convention superop build: kron(A.conj(), B) /
        // kron(A.transpose(), I) materializes the d^2 x d^2 operator.
        if (ts[i].text == "kron" && lp == i + 1) {
            for (std::size_t k = i + 2; k < close; ++k) {
                const bool member_fn = ts[k].kind == TokKind::kIdent && k > 0 &&
                                       ts[k - 1].kind == TokKind::kPunct &&
                                       (ts[k - 1].text == "." || ts[k - 1].text == "->");
                if (member_fn && (ts[k].text == "conj" || ts[k].text == "transpose" ||
                                  ts[k].text == "adjoint" || ts[k].text == "dagger")) {
                    add(out, ctx, "dense-superop-materialization", ts[i].line,
                        "kron with ." + ts[k].text +
                            "() builds a dense d^2 x d^2 superoperator outside the "
                            "structured kernels; use quantum::KronSuperOp / "
                            "StructuredSuperOp (QOC_DENSE_SUPEROP is the runtime escape "
                            "hatch)");
                    break;
                }
            }
            continue;
        }
        // (b) explicit squared-dimension allocation: Mat(n * n, n * n) or
        // .resize(n * n, n * n).
        const bool resize_call = ts[i].text == "resize" && i > 0 &&
                                 ts[i - 1].kind == TokKind::kPunct &&
                                 (ts[i - 1].text == "." || ts[i - 1].text == "->");
        if (!mat_ctor && !resize_call) continue;
        std::vector<std::string> groups(1);
        int depth = 0;
        bool ok = true;
        for (std::size_t k = lp + 1; k < close; ++k) {
            if (ts[k].kind == TokKind::kPunct) {
                if (ts[k].text == "(" || ts[k].text == "[" || ts[k].text == "{") ++depth;
                if (ts[k].text == ")" || ts[k].text == "]" || ts[k].text == "}") --depth;
                if (ts[k].text == "," && depth == 0) {
                    groups.emplace_back();
                    continue;
                }
            }
            groups.back() += ts[k].text;
        }
        // Both extents identical AND each a perfect square `x*x` (same factor
        // on both sides of a single `*`). `Mat aug(2*n, 2*n)` -- a block
        // doubling, not a squared dimension -- must not match; `Mat(d*d, d*d)`
        // and `rho.resize(dim*dim, dim*dim)` must.
        ok = groups.size() == 2 && groups[0] == groups[1];
        if (ok) {
            const std::size_t star = groups[0].find('*');
            ok = star != std::string::npos && star > 0 &&
                 groups[0].substr(0, star) == groups[0].substr(star + 1);
        }
        if (ok) {
            add(out, ctx, "dense-superop-materialization", ts[i].line,
                "dense (" + groups[0] + ") x (" + groups[1] +
                    ") allocation looks like a materialized superoperator; keep d^4 "
                    "storage inside src/quantum's structured kernels");
        }
    }
}

// --- rule: unordered-iteration-in-serialization --------------------------

bool scope_serialization(const std::string& rel) {
    return starts_with(rel, "src/") || starts_with(rel, "tools/");
}

void rule_unordered_serialization(const FileCtx& ctx, std::vector<Finding>& out) {
    const std::vector<Token>& ts = ctx.fx.tokens;
    // Names declared (anywhere in this file) with an unordered container
    // type; member and local declarations both count.
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::kIdent) continue;
        if (ts[i].text != "unordered_map" && ts[i].text != "unordered_set" &&
            ts[i].text != "unordered_multimap" && ts[i].text != "unordered_multiset") {
            continue;
        }
        if (!tok_is(ts[i + 1], "<")) continue;
        const std::size_t close = match_forward(ts, i + 1, "<", ">");
        if (close == kNpos) continue;
        std::size_t k = close + 1;
        while (k < ts.size() && ts[k].kind == TokKind::kPunct &&
               (ts[k].text == "&" || ts[k].text == "*")) {
            ++k;
        }
        if (k < ts.size() && ts[k].kind == TokKind::kIdent && ts[k].text != "const") {
            unordered_names.insert(ts[k].text);
        }
    }
    if (unordered_names.empty()) return;

    for (const FnDef& fn : ctx.fns) {
        // A function "emits serialized output" when its name says so or its
        // body writes JSONL-shaped records.
        const std::string lname = lower(fn.name);
        bool emitter =
            lname.find("jsonl") != std::string::npos || lname.find("json") != std::string::npos ||
            lname.find("serialize") != std::string::npos;
        for (std::size_t k = fn.body_open; !emitter && k < fn.body_close; ++k) {
            if (ts[k].kind == TokKind::kString &&
                (ts[k].text.find("\\\"type\\\":") != std::string::npos ||
                 ts[k].text.find("\"type\":") != std::string::npos)) {
                emitter = true;
            }
        }
        if (!emitter) continue;
        for (std::size_t k = fn.body_open; k < fn.body_close; ++k) {
            if (!ident_is(ts[k], "for") || k + 1 >= fn.body_close || !tok_is(ts[k + 1], "(")) {
                continue;
            }
            const std::size_t close = match_forward(ts, k + 1, "(", ")");
            if (close == kNpos) continue;
            // Range-for: the first top-level ':' splits decl from range.
            std::size_t colon = kNpos;
            int depth = 0;
            for (std::size_t m = k + 2; m < close; ++m) {
                if (ts[m].kind != TokKind::kPunct) continue;
                if (ts[m].text == "(" || ts[m].text == "[" || ts[m].text == "{") ++depth;
                if (ts[m].text == ")" || ts[m].text == "]" || ts[m].text == "}") --depth;
                if (ts[m].text == ":" && depth == 0) {
                    colon = m;
                    break;
                }
            }
            if (colon == kNpos) continue;
            // Iterating `x`, `obj.x`, `s->x`: resolve the trailing name.
            const Token& last = ts[close - 1];
            if (last.kind == TokKind::kIdent && unordered_names.count(last.text) != 0) {
                add(out, ctx, "unordered-iteration-in-serialization", ts[k].line,
                    "range-for over unordered container '" + last.text + "' in '" + fn.name +
                        "', which emits serialized output; iteration order is not a stable "
                        "output -- sort into a vector (or use std::map) first");
            }
        }
    }
}

// --- rule: obs-enum-sync (global) ----------------------------------------

struct EnumSyncState {
    struct Group {
        std::map<std::string, std::vector<std::string>> enums;  // Cnt/Hist -> enumerators
        struct Names {
            std::vector<std::string> strings;
            std::string file;
            int line = 0;
        };
        std::map<std::string, Names> arrays;  // kCounterNames/kHistNames
    };
    std::map<std::string, Group> groups;  // dir/stem -> declarations
};

std::string group_key(const std::string& rel) {
    const std::size_t dot = rel.find_last_of('.');
    return dot == std::string::npos ? rel : rel.substr(0, dot);
}

void collect_enum_sync(const FileCtx& ctx, EnumSyncState& st) {
    const std::vector<Token>& ts = ctx.fx.tokens;
    EnumSyncState::Group& group = st.groups[group_key(ctx.rel)];
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (ident_is(ts[i], "enum") && ident_is(ts[i + 1], "class") &&
            ts[i + 2].kind == TokKind::kIdent &&
            (ts[i + 2].text == "Cnt" || ts[i + 2].text == "Hist")) {
            std::size_t open = i + 3;
            while (open < ts.size() && !tok_is(ts[open], "{") && !tok_is(ts[open], ";")) ++open;
            if (open >= ts.size() || !tok_is(ts[open], "{")) continue;
            const std::size_t close = match_forward(ts, open, "{", "}");
            if (close == kNpos) continue;
            std::vector<std::string> values;
            bool expect = true;
            int depth = 0;
            for (std::size_t k = open + 1; k < close; ++k) {
                if (ts[k].kind == TokKind::kPunct) {
                    if (ts[k].text == "(" || ts[k].text == "{" || ts[k].text == "[") ++depth;
                    if (ts[k].text == ")" || ts[k].text == "}" || ts[k].text == "]") --depth;
                    if (ts[k].text == "," && depth == 0) expect = true;
                    continue;
                }
                if (expect && ts[k].kind == TokKind::kIdent) {
                    values.push_back(ts[k].text);
                    expect = false;
                }
            }
            group.enums[ts[i + 2].text] = std::move(values);
        }
        if (ts[i].kind == TokKind::kIdent &&
            (ts[i].text == "kCounterNames" || ts[i].text == "kHistNames")) {
            // Accept both `std::array<...> kName = {...}` and C arrays
            // `const char* kName[] = {...}` / `kName[kCount] = {...}`.
            std::size_t eq = i + 1;
            if (eq < ts.size() && tok_is(ts[eq], "[")) {
                const std::size_t rb = match_forward(ts, eq, "[", "]");
                if (rb == kNpos) continue;
                eq = rb + 1;
            }
            if (eq + 1 >= ts.size() || !tok_is(ts[eq], "=") || !tok_is(ts[eq + 1], "{")) continue;
            const std::size_t close = match_forward(ts, eq + 1, "{", "}");
            if (close == kNpos) continue;
            EnumSyncState::Group::Names names;
            names.file = ctx.rel;
            names.line = ts[i].line;
            for (std::size_t k = eq + 2; k < close; ++k) {
                if (ts[k].kind == TokKind::kString) names.strings.push_back(ts[k].text);
            }
            group.arrays[ts[i].text] = std::move(names);
        }
    }
}

void finalize_enum_sync(const EnumSyncState& st, std::vector<Finding>& out) {
    const std::pair<const char*, const char*> pairs[] = {{"Cnt", "kCounterNames"},
                                                         {"Hist", "kHistNames"}};
    for (const auto& [key, group] : st.groups) {
        for (const auto& [enum_name, array_name] : pairs) {
            const auto ei = group.enums.find(enum_name);
            const auto ai = group.arrays.find(array_name);
            if (ei == group.enums.end() || ai == group.arrays.end()) continue;
            std::size_t expected = ei->second.size();
            if (expected > 0 && ei->second.back() == "kCount") --expected;
            const EnumSyncState::Group::Names& names = ai->second;
            if (expected != names.strings.size()) {
                std::ostringstream msg;
                msg << "enum " << enum_name << " has " << expected
                    << " emission-relevant enumerators (excluding kCount) but " << array_name
                    << " carries " << names.strings.size()
                    << " JSONL name strings; telemetry names have drifted out of sync";
                out.push_back(Finding{"obs-enum-sync", names.file, names.line, msg.str()});
            }
            std::set<std::string> seen;
            for (const std::string& s : names.strings) {
                if (s.empty()) {
                    out.push_back(Finding{"obs-enum-sync", names.file, names.line,
                                          std::string(array_name) +
                                              " contains an empty JSONL metric name"});
                }
                if (!seen.insert(s).second) {
                    out.push_back(Finding{"obs-enum-sync", names.file, names.line,
                                          std::string(array_name) + " repeats the name \"" + s +
                                              "\"; every metric needs a distinct JSONL key"});
                }
            }
        }
    }
}

// --- registry -------------------------------------------------------------

const char* const kSuppressionRule = "suppression-without-justification";

}  // namespace

const std::vector<RuleInfo>& rules() {
    static const std::vector<RuleInfo> r = {
        {"determinism-wall-clock",
         "bans nondeterministic clock/RNG sources (steady/system/high_resolution clock, rand, "
         "random_device) in src/; justified telemetry sites carry qoc-lint-allow"},
        {"no-omp-outside-runtime",
         "'#pragma omp' / <omp.h> / omp_* calls are confined to src/runtime (the TaskPool "
         "replaced every OpenMP region)"},
        {"hot-path-alloc",
         "in *_into functions and '// qoc-lint: hot-path' files: no operator new/delete, no "
         "container growth, no std::string temporaries (static complement of the operator-new "
         "alloc guard)"},
        {"dense-superop-materialization",
         "dense d^2 x d^2 superoperator construction (vectorization-convention kron, squared-"
         "dimension allocs) only inside src/quantum's structured kernels"},
        {"unordered-iteration-in-serialization",
         "functions that emit JSONL/serialized output must not range-for over unordered "
         "containers; iteration order is not a stable output"},
        {"obs-enum-sync",
         "the fixed obs Cnt/Hist enums and their kCounterNames/kHistNames JSONL string tables "
         "must agree in size, with non-empty distinct names"},
        {kSuppressionRule,
         "every qoc-lint-allow(rule) must name a known rule and carry a non-empty "
         "justification after a colon"},
    };
    return r;
}

namespace {

bool known_rule(const std::string& name) {
    for (const RuleInfo& r : rules()) {
        if (name == r.name) return true;
    }
    return false;
}

bool rule_active(const Options& opt, const char* name) {
    if (!opt.enabled.empty() &&
        std::find(opt.enabled.begin(), opt.enabled.end(), name) == opt.enabled.end()) {
        return false;
    }
    return std::find(opt.disabled.begin(), opt.disabled.end(), name) == opt.disabled.end();
}

bool lintable_extension(const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".cxx" || ext == ".h";
}

void collect_files(const std::string& path, std::vector<std::string>& files) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path p(path);
    if (fs::is_regular_file(p, ec)) {
        files.push_back(p.generic_string());
        return;
    }
    if (!fs::is_directory(p, ec)) return;
    fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied, ec);
    const fs::recursive_directory_iterator end;
    while (it != end) {
        const fs::directory_entry& entry = *it;
        const std::string name = entry.path().filename().string();
        if (entry.is_directory(ec) &&
            (name == ".git" || name == "lint_fixtures" || starts_with(name, "build"))) {
            it.disable_recursion_pending();
            it.increment(ec);
            continue;
        }
        if (entry.is_regular_file(ec) && lintable_extension(entry.path())) {
            files.push_back(entry.path().generic_string());
        }
        it.increment(ec);
        if (ec) break;
    }
}

std::string relativize(const std::string& file, const std::string& root) {
    if (root.empty()) return file;
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path rel = fs::proximate(file, root, ec);
    if (ec || rel.empty()) return file;
    return rel.generic_string();
}

}  // namespace

std::vector<Finding> run(const Options& opt) {
    std::vector<std::string> files;
    for (const std::string& p : opt.paths) collect_files(p, files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> raw;
    EnumSyncState enum_sync;
    // rel path -> allows, for the suppression pass.
    std::map<std::string, std::vector<Allow>> allows_by_file;

    for (const std::string& file : files) {
        std::ifstream is(file, std::ios::binary);
        if (!is) continue;
        std::ostringstream buf;
        buf << is.rdbuf();
        const LexedFile fx = lex(file, buf.str());
        const CommentMeta meta = parse_comments(fx);
        const std::vector<FnDef> fns = extract_functions(fx.tokens);
        const std::string rel = relativize(file, opt.root);
        const FileCtx ctx{fx, rel, meta.hot_path_file, fns};
        allows_by_file[rel] = meta.allows;

        const bool any_scope = opt.ignore_scopes;
        if (rule_active(opt, "determinism-wall-clock") && (any_scope || scope_src(rel))) {
            rule_wall_clock(ctx, raw);
        }
        if (rule_active(opt, "no-omp-outside-runtime") && (any_scope || scope_omp(rel))) {
            rule_omp(ctx, raw);
        }
        if (rule_active(opt, "hot-path-alloc") && (any_scope || scope_src(rel))) {
            rule_hot_path(ctx, raw);
        }
        if (rule_active(opt, "dense-superop-materialization") && (any_scope || scope_dense(rel))) {
            rule_dense_superop(ctx, raw);
        }
        if (rule_active(opt, "unordered-iteration-in-serialization") &&
            (any_scope || scope_serialization(rel))) {
            rule_unordered_serialization(ctx, raw);
        }
        if (rule_active(opt, "obs-enum-sync") && (any_scope || scope_src(rel))) {
            collect_enum_sync(ctx, enum_sync);
        }
        // The suppression audit is not gated on rule_active: exemptions must
        // stay reviewable regardless of --rule/--disable selections.
        {
            for (const Allow& a : meta.allows) {
                if (!known_rule(a.rule)) {
                    raw.push_back(Finding{kSuppressionRule, rel, a.line,
                                          "qoc-lint-allow names unknown rule '" + a.rule +
                                              "' (see qoc_lint --list-rules)"});
                } else if (!a.justified) {
                    raw.push_back(Finding{kSuppressionRule, rel, a.line,
                                          "qoc-lint-allow(" + a.rule +
                                              ") carries no justification; write "
                                              "'// qoc-lint-allow(" +
                                              a.rule + "): why this site is exempt'"});
                }
            }
        }
    }
    if (rule_active(opt, "obs-enum-sync")) finalize_enum_sync(enum_sync, raw);

    // Justified suppressions: an allow on the finding's line, or on the line
    // directly above it, suppresses findings of exactly that rule.  The
    // suppression-audit findings themselves cannot be suppressed.
    std::vector<Finding> out;
    for (Finding& f : raw) {
        bool suppressed = false;
        if (f.rule != kSuppressionRule) {
            const auto it = allows_by_file.find(f.file);
            if (it != allows_by_file.end()) {
                for (const Allow& a : it->second) {
                    if (a.rule == f.rule && a.justified &&
                        (a.line == f.line || a.line + 1 == f.line)) {
                        suppressed = true;
                        break;
                    }
                }
            }
        }
        if (!suppressed) out.push_back(std::move(f));
    }
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        if (a.rule != b.rule) return a.rule < b.rule;
        return a.message < b.message;
    });
    return out;
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof hex, "\\u%04x", static_cast<unsigned>(c));
                    os << hex;
                } else {
                    os << c;
                }
        }
    }
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n  \"count\": " << findings.size() << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"";
        json_escape(os, f.rule);
        os << "\", \"file\": \"";
        json_escape(os, f.file);
        os << "\", \"line\": " << f.line << ", \"message\": \"";
        json_escape(os, f.message);
        os << "\"}";
    }
    os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

}  // namespace qoc_lint
