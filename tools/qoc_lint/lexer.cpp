#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace qoc_lint {

namespace {

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
    return s.substr(b, e - b);
}

}  // namespace

LexedFile lex(std::string path, const std::string& src) {
    LexedFile out;
    out.path = std::move(path);
    int line = 1;
    bool code_on_line = false;  // a token already emitted on the current line
    const std::size_t n = src.size();
    std::size_t i = 0;

    auto advance_line = [&](char c) {
        if (c == '\n') {
            ++line;
            code_on_line = false;
        }
    };
    auto push = [&](TokKind kind, std::string text, int at) {
        out.tokens.push_back(Token{kind, std::move(text), at});
        code_on_line = true;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c)) != 0) {
            advance_line(c);
            ++i;
            continue;
        }
        // Line continuation inside preprocessor directives.
        if (c == '\\' && i + 1 < n && (src[i + 1] == '\n' || src[i + 1] == '\r')) {
            i += (i + 2 < n && src[i + 1] == '\r' && src[i + 2] == '\n') ? 3 : 2;
            ++line;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int at = line;
            const bool trailing = code_on_line;
            i += 2;
            std::string text;
            while (i < n && src[i] != '\n') text.push_back(src[i++]);
            out.comments.push_back(Comment{trim(text), at, trailing});
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int at = line;
            const bool trailing = code_on_line;
            i += 2;
            std::string text;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                advance_line(src[i]);
                text.push_back(src[i++]);
            }
            i = (i + 1 < n) ? i + 2 : n;
            out.comments.push_back(Comment{trim(text), at, trailing});
            continue;
        }
        // String literals, including raw strings R"delim( ... )delim".
        if (c == '"' || (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
            const int at = line;
            std::string text;
            if (c == 'R') {
                i += 2;  // R"
                std::string delim;
                while (i < n && src[i] != '(') delim.push_back(src[i++]);
                if (i < n) ++i;  // (
                const std::string close = ")" + delim + "\"";
                while (i < n && src.compare(i, close.size(), close) != 0) {
                    advance_line(src[i]);
                    text.push_back(src[i++]);
                }
                i = (i < n) ? i + close.size() : n;
            } else {
                ++i;  // "
                while (i < n && src[i] != '"') {
                    if (src[i] == '\\' && i + 1 < n) {
                        text.push_back(src[i]);
                        text.push_back(src[i + 1]);
                        i += 2;
                        continue;
                    }
                    advance_line(src[i]);
                    text.push_back(src[i++]);
                }
                if (i < n) ++i;  // closing "
            }
            push(TokKind::kString, std::move(text), at);
            continue;
        }
        if (c == '\'') {
            const int at = line;
            std::string text;
            ++i;
            while (i < n && src[i] != '\'') {
                if (src[i] == '\\' && i + 1 < n) {
                    text.push_back(src[i]);
                    text.push_back(src[i + 1]);
                    i += 2;
                    continue;
                }
                text.push_back(src[i++]);
            }
            if (i < n) ++i;
            push(TokKind::kChar, std::move(text), at);
            continue;
        }
        if (is_ident_start(c)) {
            const int at = line;
            std::string text;
            while (i < n && is_ident_char(src[i])) text.push_back(src[i++]);
            // Encoding-prefixed string literals (u8"...", L"...", uR"(..)").
            if (i < n && (src[i] == '"') &&
                (text == "u8" || text == "u" || text == "U" || text == "L")) {
                // Re-lex as a plain string; the prefix is irrelevant to rules.
                continue;  // loop re-enters at the quote
            }
            push(TokKind::kIdent, std::move(text), at);
            continue;
        }
        if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
            const int at = line;
            std::string text;
            text.push_back(src[i++]);
            while (i < n) {
                const char d = src[i];
                if (is_ident_char(d) || d == '.' || d == '\'') {
                    text.push_back(src[i++]);
                    continue;
                }
                if ((d == '+' || d == '-') && !text.empty()) {
                    const char p = text.back();
                    if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
                        text.push_back(src[i++]);
                        continue;
                    }
                }
                break;
            }
            push(TokKind::kNumber, std::move(text), at);
            continue;
        }
        // Multi-char punctuators the rules care about.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            push(TokKind::kPunct, "::", line);
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            push(TokKind::kPunct, "->", line);
            i += 2;
            continue;
        }
        push(TokKind::kPunct, std::string(1, c), line);
        ++i;
    }
    return out;
}

}  // namespace qoc_lint
