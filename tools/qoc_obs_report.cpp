/// \file qoc_obs_report.cpp
/// \brief Offline SLO report over a `qoc::obs` telemetry stream.
///
/// Reads the JSONL metrics file a service run produced (QOC_METRICS=<file>)
/// and prints a human-readable serving report: request rate, hit/shed
/// ratios, per-lane latency quantiles (exact, from the per-request records,
/// not the bucketed histograms), revalidation pass rate, the most expensive
/// design keys, and the snapshot time series.  Optionally:
///
///   --trace <file>   join the chrome-trace spans against the request ids
///                    and report how many requests have correlated spans
///   --prom           append a Prometheus-style text exposition
///   --check          exit non-zero unless the stream looks healthy
///                    (non-empty latency quantiles, hit ratio > 0) -- the
///                    CI smoke gate
///
/// The parser is deliberately minimal: it understands exactly the flat
/// one-object-per-line records `qoc::obs` emits (service_request, snapshot,
/// rb_seed, optimizer_iteration, metrics) by scanning for `"key":` patterns;
/// it is not a general JSON parser and does not need to be.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Finds `"key":` in `line` and returns the position just past the colon,
/// or npos.  Matches the first occurrence: fine for the flat top-level keys
/// this tool reads (emitters never repeat a top-level key later in a line).
std::size_t value_pos(const std::string& line, const char* key) {
    const std::string pat = std::string("\"") + key + "\":";
    const std::size_t at = line.find(pat);
    return at == std::string::npos ? std::string::npos : at + pat.size();
}

bool extract_u64(const std::string& line, const char* key, std::uint64_t& out) {
    const std::size_t at = value_pos(line, key);
    if (at == std::string::npos || at >= line.size()) return false;
    char* end = nullptr;
    out = std::strtoull(line.c_str() + at, &end, 10);
    return end != line.c_str() + at;
}

bool extract_string(const std::string& line, const char* key, std::string& out) {
    std::size_t at = value_pos(line, key);
    if (at == std::string::npos || at >= line.size() || line[at] != '"') return false;
    const std::size_t close = line.find('"', at + 1);
    if (close == std::string::npos) return false;
    out = line.substr(at + 1, close - at - 1);
    return true;
}

std::string line_type(const std::string& line) {
    std::string t;
    extract_string(line, "type", t);
    return t;
}

/// Exact quantile of a SORTED sample (nearest-rank with interpolation).
double quantile(const std::vector<std::uint64_t>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) +
           frac * (static_cast<double>(sorted[hi]) - static_cast<double>(sorted[lo]));
}

double ms(double ns) { return ns / 1e6; }

struct RequestRecord {
    std::uint64_t id = 0;
    std::uint64_t key = 0;
    std::uint64_t device = 0;
    std::string gate;
    std::string lane;
    std::string outcome;
    bool redesign = false;
    std::uint64_t latency_ns = 0;
};

struct SnapshotPoint {
    std::uint64_t seq = 0;
    std::uint64_t t_ns = 0;
    std::string line;  ///< kept for gauge extraction
};

struct Report {
    std::vector<RequestRecord> requests;
    std::vector<SnapshotPoint> snapshots;
    std::string final_metrics;  ///< last {"type":"metrics"} line, if any
};

bool load_stream(const std::string& path, Report& rep) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "qoc_obs_report: cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const std::string type = line_type(line);
        if (type == "service_request") {
            RequestRecord r;
            extract_u64(line, "id", r.id);
            extract_u64(line, "key", r.key);
            extract_u64(line, "device", r.device);
            extract_string(line, "gate", r.gate);
            extract_string(line, "lane", r.lane);
            extract_string(line, "outcome", r.outcome);
            std::uint64_t redesign = 0;
            extract_u64(line, "redesign", redesign);
            r.redesign = redesign != 0;
            extract_u64(line, "latency_ns", r.latency_ns);
            rep.requests.push_back(std::move(r));
        } else if (type == "snapshot") {
            SnapshotPoint p;
            extract_u64(line, "seq", p.seq);
            extract_u64(line, "t_ns", p.t_ns);
            p.line = line;
            rep.snapshots.push_back(std::move(p));
        } else if (type == "metrics") {
            rep.final_metrics = line;
        }
    }
    return true;
}

/// Gauge value out of a snapshot line's `"gauges":{...}` object (gauge
/// names never collide with top-level keys, so a whole-line scan is safe).
bool snapshot_gauge(const SnapshotPoint& p, const char* name, double& out) {
    const std::size_t at = value_pos(p.line, name);
    if (at == std::string::npos) return false;
    out = std::strtod(p.line.c_str() + at, nullptr);
    return true;
}

/// Collects every `"req":<id>` (span -> request join key) in a trace file.
std::set<std::uint64_t> trace_request_ids(const std::string& path) {
    std::set<std::uint64_t> ids;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "qoc_obs_report: cannot open trace %s\n", path.c_str());
        return ids;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string pat = "\"req\":";
    std::size_t at = 0;
    while ((at = text.find(pat, at)) != std::string::npos) {
        at += pat.size();
        const std::uint64_t id = std::strtoull(text.c_str() + at, nullptr, 10);
        if (id != 0) ids.insert(id);
    }
    return ids;
}

struct LaneStats {
    std::map<std::string, std::uint64_t> by_outcome;
    std::vector<std::uint64_t> latencies;  ///< all outcomes, ns
};

int run(const std::string& metrics_path, const std::string& trace_path, bool prom,
        bool check) {
    Report rep;
    if (!load_stream(metrics_path, rep)) return 2;

    std::map<std::string, LaneStats> lanes;
    std::map<std::string, std::uint64_t> outcomes;
    std::map<std::uint64_t, std::uint64_t> design_cost;  ///< key -> summed ns
    std::map<std::uint64_t, std::string> key_gate;
    std::uint64_t redesigns = 0;
    for (const RequestRecord& r : rep.requests) {
        LaneStats& lane = lanes[r.lane];
        ++lane.by_outcome[r.outcome];
        lane.latencies.push_back(r.latency_ns);
        ++outcomes[r.outcome];
        if (r.redesign) ++redesigns;
        if (r.outcome == "design") {
            design_cost[r.key] += r.latency_ns;
            key_gate[r.key] = r.gate;
        }
    }

    const std::uint64_t total = rep.requests.size();
    const std::uint64_t hits = outcomes["hit"];
    const std::uint64_t revalidates = outcomes["revalidate"];
    const std::uint64_t designs = outcomes["design"];
    const std::uint64_t shed = outcomes["shed"];

    std::printf("qoc_obs_report: %s\n", metrics_path.c_str());
    std::printf("\n== requests ==\n");
    std::printf("  total        %llu\n", static_cast<unsigned long long>(total));
    std::printf("  hit          %8llu", static_cast<unsigned long long>(hits));
    if (total > 0) std::printf("   (%.1f%%)", 100.0 * static_cast<double>(hits) /
                                                  static_cast<double>(total));
    std::printf("\n  revalidate   %8llu\n", static_cast<unsigned long long>(revalidates));
    std::printf("  design       %8llu\n", static_cast<unsigned long long>(designs));
    std::printf("  shed         %8llu", static_cast<unsigned long long>(shed));
    if (total > 0) std::printf("   (%.1f%%)", 100.0 * static_cast<double>(shed) /
                                                  static_cast<double>(total));
    std::printf("\n");
    if (revalidates + redesigns > 0) {
        std::printf("  revalidation pass rate  %.1f%%  (%llu passed, %llu redesigned)\n",
                    100.0 * static_cast<double>(revalidates) /
                        static_cast<double>(revalidates + redesigns),
                    static_cast<unsigned long long>(revalidates),
                    static_cast<unsigned long long>(redesigns));
    }

    std::printf("\n== latency (ms, exact per-request) ==\n");
    std::printf("  %-14s %8s %10s %10s %10s %10s\n", "lane", "count", "p50", "p95", "p99",
                "max");
    for (auto& [name, lane] : lanes) {
        std::sort(lane.latencies.begin(), lane.latencies.end());
        std::printf("  %-14s %8zu %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                    lane.latencies.size(), ms(quantile(lane.latencies, 0.50)),
                    ms(quantile(lane.latencies, 0.95)), ms(quantile(lane.latencies, 0.99)),
                    lane.latencies.empty() ? 0.0
                                           : ms(static_cast<double>(lane.latencies.back())));
        for (const auto& [outcome, n] : lane.by_outcome) {
            std::printf("    %-12s %8llu\n", outcome.c_str(),
                        static_cast<unsigned long long>(n));
        }
    }

    if (!design_cost.empty()) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> top(design_cost.begin(),
                                                                 design_cost.end());
        std::sort(top.begin(), top.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        std::printf("\n== top design-cost keys ==\n");
        const std::size_t n_top = std::min<std::size_t>(top.size(), 5);
        for (std::size_t i = 0; i < n_top; ++i) {
            std::printf("  %016llx  %-4s %10.3f ms\n",
                        static_cast<unsigned long long>(top[i].first),
                        key_gate[top[i].first].c_str(),
                        ms(static_cast<double>(top[i].second)));
        }
    }

    if (!rep.snapshots.empty()) {
        const std::uint64_t t0 = rep.snapshots.front().t_ns;
        const std::uint64_t t1 = rep.snapshots.back().t_ns;
        std::printf("\n== snapshots (%zu points over %.1f ms) ==\n", rep.snapshots.size(),
                    ms(static_cast<double>(t1 - t0)));
        std::printf("  %6s %10s %8s %10s %8s %8s\n", "seq", "t_ms", "queue", "inflight",
                    "entries", "suspect");
        // Subsample long series to ~20 rows (always keeping the last point).
        const std::size_t stride = std::max<std::size_t>(1, rep.snapshots.size() / 20);
        std::vector<SnapshotPoint> shown;
        for (std::size_t i = 0; i < rep.snapshots.size(); i += stride) {
            shown.push_back(rep.snapshots[i]);
        }
        if (shown.back().seq != rep.snapshots.back().seq) {
            shown.push_back(rep.snapshots.back());
        }
        for (const SnapshotPoint& p : shown) {
            double queue = 0, inflight = 0, entries = 0, suspect = 0;
            snapshot_gauge(p, "service.queue.depth", queue);
            snapshot_gauge(p, "service.inflight_designs", inflight);
            snapshot_gauge(p, "store.entries", entries);
            snapshot_gauge(p, "store.suspect", suspect);
            std::printf("  %6llu %10.1f %8.0f %10.0f %8.0f %8.0f\n",
                        static_cast<unsigned long long>(p.seq),
                        ms(static_cast<double>(p.t_ns)), queue, inflight, entries, suspect);
        }
    }

    std::uint64_t joinable = 0;
    if (!trace_path.empty()) {
        const std::set<std::uint64_t> span_ids = trace_request_ids(trace_path);
        std::uint64_t with_spans = 0;
        for (const RequestRecord& r : rep.requests) {
            if (span_ids.count(r.id) != 0) ++with_spans;
        }
        joinable = with_spans;
        std::printf("\n== trace join (%s) ==\n", trace_path.c_str());
        std::printf("  distinct request ids on spans  %zu\n", span_ids.size());
        std::printf("  requests with correlated spans %llu / %llu\n",
                    static_cast<unsigned long long>(with_spans),
                    static_cast<unsigned long long>(total));
    }

    if (!rep.final_metrics.empty()) {
        std::uint64_t dropped = 0;
        if (extract_u64(rep.final_metrics, "dropped_trace_events", dropped) && dropped > 0) {
            std::printf("\nWARNING: %llu trace events dropped (ring overflow); the trace "
                        "is truncated\n",
                        static_cast<unsigned long long>(dropped));
        }
    }

    if (prom) {
        std::printf("\n# -- Prometheus exposition --\n");
        std::printf("# TYPE qoc_requests_total counter\n");
        for (const auto& [name, lane] : lanes) {
            for (const auto& [outcome, n] : lane.by_outcome) {
                std::printf("qoc_requests_total{lane=\"%s\",outcome=\"%s\"} %llu\n",
                            name.c_str(), outcome.c_str(),
                            static_cast<unsigned long long>(n));
            }
        }
        std::printf("# TYPE qoc_request_latency_ns summary\n");
        for (auto& [name, lane] : lanes) {
            for (const double q : {0.50, 0.95, 0.99}) {
                std::printf("qoc_request_latency_ns{lane=\"%s\",quantile=\"%.2f\"} %.0f\n",
                            name.c_str(), q, quantile(lane.latencies, q));
            }
        }
        std::printf("# TYPE qoc_snapshots_total counter\n");
        std::printf("qoc_snapshots_total %zu\n", rep.snapshots.size());
    }

    if (check) {
        bool healthy = true;
        if (total == 0) {
            std::fprintf(stderr, "check: FAIL no service_request records\n");
            healthy = false;
        }
        if (hits == 0) {
            std::fprintf(stderr, "check: FAIL hit ratio is zero\n");
            healthy = false;
        }
        bool any_latency = false;
        for (const auto& [name, lane] : lanes) {
            if (!lane.latencies.empty() && lane.latencies.back() > 0) any_latency = true;
        }
        if (!any_latency) {
            std::fprintf(stderr, "check: FAIL latency quantiles are empty\n");
            healthy = false;
        }
        if (!trace_path.empty() && joinable == 0) {
            std::fprintf(stderr, "check: FAIL no request joins a trace span\n");
            healthy = false;
        }
        if (!healthy) return 1;
        std::printf("\ncheck: OK\n");
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string metrics_path;
    std::string trace_path;
    bool prom = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (arg == "--prom") {
            prom = true;
        } else if (arg == "--check") {
            check = true;
        } else if (!arg.empty() && arg[0] != '-' && metrics_path.empty()) {
            metrics_path = arg;
        } else {
            std::fprintf(stderr,
                         "usage: qoc_obs_report <metrics.jsonl> [--trace <trace.json>] "
                         "[--prom] [--check]\n");
            return 2;
        }
    }
    if (metrics_path.empty()) {
        std::fprintf(stderr,
                     "usage: qoc_obs_report <metrics.jsonl> [--trace <trace.json>] "
                     "[--prom] [--check]\n");
        return 2;
    }
    return run(metrics_path, trace_path, prom, check);
}
